package cluster

import (
	"encoding/json"
	"time"

	"repro/internal/store"
)

// Backend is the set of store/lease/journal/discovery operations the
// engine, the service layer, and the daemon need from a cluster
// membership — extracted so the transport underneath is swappable.
// Two implementations exist:
//
//   - *Cluster: the original shared-directory backend, where every
//     primitive rides on the store's filesystem machinery (link(2)
//     create-if-absent, rename CAS). Byte-for-byte today's behavior.
//   - *HTTPBackend: a network-native backend where every operation is
//     an RPC against a coordinator's /v1/cluster/* routes, letting a
//     runner join with no shared -data-dir at all.
//
// The contract is identical either way: leases are advisory (results
// are deterministic and content-addressed, so protocol races degrade
// to duplicate work, never wrong records), the journal is the
// exactly-once ledger, and announcements are idempotent per
// fingerprint.
type Backend interface {
	// NodeID returns this node's identity.
	NodeID() string
	// Role returns this node's cluster role.
	Role() Role
	// LeaseTTL returns the configured lease TTL.
	LeaseTTL() time.Duration
	// Heartbeat returns the lease/registry renewal cadence.
	Heartbeat() time.Duration
	// Poll returns the wait/adoption polling cadence.
	Poll() time.Duration
	// Leave withdraws this node from the cluster.
	Leave()

	// Claim attempts to take this node's lease on key; when it fails it
	// returns the lease currently in the way.
	Claim(key string) (bool, store.Lease, error)
	// Renew extends this node's lease on key; store.ErrLeaseLost means
	// the lease lapsed or was reclaimed.
	Renew(key string) error
	// Release drops this node's lease on key, if still held.
	Release(key string)

	// RecordComputed journals that this node computed key; best-effort.
	RecordComputed(key string)
	// Journal returns the cluster-wide compute ledger.
	Journal() ([]JournalEntry, error)

	// AnnounceSweep publishes a sweep to the cluster, create-if-absent.
	AnnounceSweep(fp, kind string, spec json.RawMessage, priority int) error
	// CompleteSweep retires a sweep's announcement; idempotent.
	CompleteSweep(fp string)
	// Announcements returns the currently published sweeps, oldest first.
	Announcements() ([]Announcement, error)

	// CancelSweep publishes a cross-node cancellation for fp.
	CancelSweep(fp string) error
	// Cancellations returns the live cancellation records.
	Cancellations() ([]CancelRecord, error)

	// Nodes returns the registry view of the cluster's members.
	Nodes() ([]NodeInfo, error)
}

var _ Backend = (*Cluster)(nil)

// WatchHooks connect the cluster watch loop to the local engine.
type WatchHooks struct {
	// HasResult reports whether the sweep aggregate for fp is already
	// available, so a finished announcement is retired instead of
	// adopted. nil means "never".
	HasResult func(fp string) bool
	// Submit adopts one announced sweep into the local engine;
	// returning an error (a full queue, say) leaves the announcement
	// unadopted so the next scan retries. nil disables adoption.
	Submit func(Announcement) error
	// Cancel applies one cross-node cancellation: cancel local live
	// jobs for fp submitted before canceledAt. nil disables
	// cancellation propagation.
	Cancel func(fp string, canceledAt time.Time)
}

// Watch is the cluster background loop, generic over Backend: on the
// backend's poll cadence it adopts foreign announcements (on roles
// that adopt) and propagates cross-node cancellations (on every
// role), blocking until stop closes.
func Watch(b Backend, stop <-chan struct{}, h WatchHooks) {
	w := &watcher{b: b, h: h,
		seen: make(map[string]bool), applied: make(map[string]time.Time)}
	ticker := time.NewTicker(b.Poll())
	defer ticker.Stop()
	for {
		w.scan()
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
	}
}

type watcher struct {
	b Backend
	h WatchHooks
	// seen tracks fingerprints already handed to Submit while their
	// announcement is live, so each sweep is adopted exactly once.
	seen map[string]bool
	// applied tracks the latest cancellation timestamp acted on per
	// fingerprint, so records are not re-applied every scan.
	applied map[string]time.Time
}

func (w *watcher) scan() {
	if w.b.Role().Adopts() && w.h.Submit != nil {
		w.adoptOnce()
	}
	if w.h.Cancel != nil {
		w.cancelOnce()
	}
}

func (w *watcher) adoptOnce() {
	anns, err := w.b.Announcements()
	if err != nil {
		return
	}
	current := make(map[string]bool, len(anns))
	for _, a := range anns {
		current[a.Fingerprint] = true
		if a.Origin == w.b.NodeID() || w.seen[a.Fingerprint] {
			continue
		}
		if w.h.HasResult != nil && w.h.HasResult(a.Fingerprint) {
			// The sweep's aggregate is already stored: nothing to drain.
			w.b.CompleteSweep(a.Fingerprint)
			w.seen[a.Fingerprint] = true
			continue
		}
		if err := w.h.Submit(a); err != nil {
			continue // retried on the next scan
		}
		w.seen[a.Fingerprint] = true
	}
	// Forget fingerprints whose announcement has been retired, so a
	// long-lived runner re-adopts a sweep that is legitimately
	// re-announced later (e.g. store GC evicted its records and the
	// origin re-ran it).
	for fp := range w.seen {
		if !current[fp] {
			delete(w.seen, fp)
		}
	}
}

func (w *watcher) cancelOnce() {
	recs, err := w.b.Cancellations()
	if err != nil {
		return
	}
	current := make(map[string]bool, len(recs))
	for _, r := range recs {
		current[r.Fingerprint] = true
		if r.Node == w.b.NodeID() {
			continue // the originator already canceled locally
		}
		if at, ok := w.applied[r.Fingerprint]; ok && !r.CanceledAt.After(at) {
			continue
		}
		w.h.Cancel(r.Fingerprint, r.CanceledAt)
		w.applied[r.Fingerprint] = r.CanceledAt
	}
	for fp := range w.applied {
		if !current[fp] {
			delete(w.applied, fp)
		}
	}
}
