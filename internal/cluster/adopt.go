package cluster

import "time"

// Adopt is the runner loop: it scans the shared announcement queue on
// the cluster's poll cadence and hands each foreign, still-unfinished
// sweep to submit exactly once. It blocks until stop closes (or the
// node Leaves). submit typically decodes the announcement's spec and
// submits it to the local engine; returning an error (a full queue,
// say) leaves the announcement unadopted so the next scan retries it.
//
// Announcements whose sweep result already sits in the store — the
// origin finished, or died after finishing — are retired instead of
// adopted. Announcements from this node are always skipped: the origin
// is already running its own sweep.
func (c *Cluster) Adopt(stop <-chan struct{}, submit func(Announcement) error) {
	seen := make(map[string]bool)
	ticker := time.NewTicker(c.cfg.Poll)
	defer ticker.Stop()
	for {
		c.adoptOnce(seen, submit)
		select {
		case <-stop:
			return
		case <-c.stop:
			return
		case <-ticker.C:
		}
	}
}

func (c *Cluster) adoptOnce(seen map[string]bool, submit func(Announcement) error) {
	anns, err := c.Announcements()
	if err != nil {
		return
	}
	current := make(map[string]bool, len(anns))
	for _, a := range anns {
		current[a.Fingerprint] = true
		if a.Origin == c.cfg.NodeID || seen[a.Fingerprint] {
			continue
		}
		if _, ok, _ := c.st.Get(a.Fingerprint); ok {
			// The sweep's aggregate is already stored: nothing to drain.
			c.CompleteSweep(a.Fingerprint)
			seen[a.Fingerprint] = true
			continue
		}
		if err := submit(a); err != nil {
			continue // retried on the next scan
		}
		seen[a.Fingerprint] = true
	}
	// Forget fingerprints whose announcement has been retired, so a
	// long-lived runner re-adopts a sweep that is legitimately
	// re-announced later (e.g. store GC evicted its records and the
	// origin re-ran it).
	for fp := range seen {
		if !current[fp] {
			delete(seen, fp)
		}
	}
}
