package cluster

// Adopt is the runner loop over the shared-directory backend: it scans
// the announcement queue on the cluster's poll cadence and hands each
// foreign, still-unfinished sweep to submit exactly once, blocking
// until stop closes (or the node Leaves). It is Watch specialized to
// this backend with the store as the finished-sweep check; kept for
// callers that only want adoption with no cancellation propagation.
func (c *Cluster) Adopt(stop <-chan struct{}, submit func(Announcement) error) {
	merged := make(chan struct{})
	settled := make(chan struct{})
	defer close(settled)
	go func() {
		defer close(merged)
		select {
		case <-stop:
		case <-c.stop: // Leave() also ends adoption
		case <-settled:
		}
	}()
	Watch(c, merged, WatchHooks{HasResult: c.hasStored, Submit: submit})
}

// hasStored reports whether the aggregate for fp already sits in the
// shared store.
func (c *Cluster) hasStored(fp string) bool {
	_, ok, _ := c.st.Get(fp)
	return ok
}

// adoptOnce runs a single adoption scan; split out for tests.
func (c *Cluster) adoptOnce(seen map[string]bool, submit func(Announcement) error) {
	w := &watcher{b: c, seen: seen,
		h: WatchHooks{HasResult: c.hasStored, Submit: submit}}
	w.adoptOnce()
}
