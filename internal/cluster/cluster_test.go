package cluster

import (
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

const fpA = "aaaa000000000000000000000000000000000000000000000000000000000000"
const fpB = "bbbb000000000000000000000000000000000000000000000000000000000000"

func join(t *testing.T, st *store.Store, id string, role Role) *Cluster {
	t.Helper()
	c, err := Join(st, Config{
		NodeID:    id,
		Role:      role,
		LeaseTTL:  500 * time.Millisecond,
		Heartbeat: 50 * time.Millisecond,
		Poll:      20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("join %s: %v", id, err)
	}
	t.Cleanup(c.Leave)
	return c
}

func sharedStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	return st
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	cfg, err := Config{}.withDefaults()
	if err != nil {
		t.Fatalf("defaults: %v", err)
	}
	if cfg.NodeID == "" || cfg.Role != RolePeer || cfg.LeaseTTL != DefaultLeaseTTL {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.Heartbeat != cfg.LeaseTTL/3 {
		t.Fatalf("heartbeat default = %v, want TTL/3", cfg.Heartbeat)
	}
	if cfg.Poll < 50*time.Millisecond || cfg.Poll > time.Second {
		t.Fatalf("poll default %v outside clamp", cfg.Poll)
	}
	if _, err := (Config{Role: "boss"}).withDefaults(); err == nil {
		t.Fatal("unknown role accepted")
	}
	if !RoleRunner.Adopts() || !RolePeer.Adopts() || RoleCoordinator.Adopts() {
		t.Fatal("role adoption matrix wrong")
	}
}

func TestNodeRegistryAndLiveness(t *testing.T) {
	st := sharedStore(t)
	a := join(t, st, "node-a", RoleCoordinator)
	b := join(t, st, "node-b", RoleRunner)

	nodes, err := a.Nodes()
	if err != nil {
		t.Fatalf("nodes: %v", err)
	}
	if len(nodes) != 2 || nodes[0].ID != "node-a" || nodes[1].ID != "node-b" {
		t.Fatalf("nodes = %+v, want sorted [node-a node-b]", nodes)
	}
	for _, n := range nodes {
		if !n.Alive {
			t.Fatalf("node %s not alive right after join", n.ID)
		}
	}
	if nodes[0].Role != RoleCoordinator || nodes[1].Role != RoleRunner {
		t.Fatalf("roles = %s/%s", nodes[0].Role, nodes[1].Role)
	}

	// A node that leaves disappears; a node that merely stops
	// heartbeating (killed) goes stale instead.
	b.Leave()
	nodes, _ = a.Nodes()
	if len(nodes) != 1 || nodes[0].ID != "node-a" {
		t.Fatalf("after leave, nodes = %+v", nodes)
	}
}

func TestStaleNodeGoesNotAlive(t *testing.T) {
	st := sharedStore(t)
	a := join(t, st, "node-a", RolePeer)
	// Simulate a killed peer: its record exists but is never renewed.
	dead := NodeInfo{ID: "node-dead", Role: RolePeer,
		StartedAt: time.Now().UTC().Add(-time.Hour),
		LastSeen:  time.Now().UTC().Add(-time.Hour)}
	if err := a.writeDoc(a.nodePath(dead.ID), dead); err != nil {
		t.Fatalf("plant dead node: %v", err)
	}
	nodes, _ := a.Nodes()
	byID := map[string]NodeInfo{}
	for _, n := range nodes {
		byID[n.ID] = n
	}
	if !byID["node-a"].Alive {
		t.Fatal("live node reported dead")
	}
	if byID["node-dead"].Alive {
		t.Fatal("stale node reported alive")
	}
}

func TestHeartbeatAdvancesLastSeen(t *testing.T) {
	st := sharedStore(t)
	a := join(t, st, "node-a", RolePeer)
	first, _ := a.Nodes()
	time.Sleep(120 * time.Millisecond) // > 2 heartbeats
	second, _ := a.Nodes()
	if !second[0].LastSeen.After(first[0].LastSeen) {
		t.Fatalf("heartbeat did not advance last_seen: %v -> %v",
			first[0].LastSeen, second[0].LastSeen)
	}
}

func TestAnnounceIsIdempotentAndCompletable(t *testing.T) {
	st := sharedStore(t)
	a := join(t, st, "node-a", RolePeer)
	b := join(t, st, "node-b", RolePeer)

	spec := json.RawMessage(`{"child":"process","process":"cobra"}`)
	if err := a.AnnounceSweep(fpA, "sweep", spec, 3); err != nil {
		t.Fatalf("announce: %v", err)
	}
	// Re-announcing — from any node — must not clobber the original.
	if err := b.AnnounceSweep(fpA, "sweep", json.RawMessage(`{}`), 9); err != nil {
		t.Fatalf("re-announce: %v", err)
	}
	anns, err := b.Announcements()
	if err != nil {
		t.Fatalf("announcements: %v", err)
	}
	if len(anns) != 1 {
		t.Fatalf("got %d announcements, want 1", len(anns))
	}
	got := anns[0]
	if got.Fingerprint != fpA || got.Origin != "node-a" || got.Priority != 3 || got.Kind != "sweep" {
		t.Fatalf("announcement = %+v", got)
	}
	if string(got.Spec) != string(spec) {
		t.Fatalf("spec = %s", got.Spec)
	}

	b.CompleteSweep(fpA)
	b.CompleteSweep(fpA) // idempotent
	if anns, _ = a.Announcements(); len(anns) != 0 {
		t.Fatalf("announcements after complete = %+v", anns)
	}
}

func TestJournalRecordsExactlyWhatWasComputed(t *testing.T) {
	st := sharedStore(t)
	a := join(t, st, "node-a", RolePeer)
	b := join(t, st, "node-b", RolePeer)

	a.RecordComputed(fpA)
	b.RecordComputed(fpB)
	entries, err := a.Journal()
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("journal has %d entries, want 2", len(entries))
	}
	byKey := map[string]string{}
	for _, e := range entries {
		byKey[e.Key] = e.Node
	}
	if byKey[fpA] != "node-a" || byKey[fpB] != "node-b" {
		t.Fatalf("journal = %+v", entries)
	}

	// The ledger is exactly-once per key: a duplicate computation (or
	// a redelivered journal write) is a no-op and the first reporter
	// keeps the attribution.
	b.RecordComputed(fpA)
	entries, err = a.Journal()
	if err != nil {
		t.Fatalf("journal after duplicate: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("journal after duplicate = %d entries, want 2", len(entries))
	}
	byKey = map[string]string{}
	for _, e := range entries {
		byKey[e.Key] = e.Node
	}
	if byKey[fpA] != "node-a" {
		t.Fatalf("duplicate stole attribution: journal = %+v", entries)
	}
}

func TestLeaseWrappersBindNodeIdentity(t *testing.T) {
	st := sharedStore(t)
	a := join(t, st, "node-a", RolePeer)
	b := join(t, st, "node-b", RolePeer)

	ok, _, err := a.Claim(fpA)
	if err != nil || !ok {
		t.Fatalf("claim = %v, %v", ok, err)
	}
	ok, blocking, err := b.Claim(fpA)
	if err != nil || ok {
		t.Fatalf("contended claim = %v, %v", ok, err)
	}
	if blocking.Holder != "node-a" {
		t.Fatalf("blocking holder = %q", blocking.Holder)
	}
	if err := a.Renew(fpA); err != nil {
		t.Fatalf("renew: %v", err)
	}
	if err := b.Renew(fpA); !errors.Is(err, store.ErrLeaseLost) {
		t.Fatalf("foreign renew = %v, want ErrLeaseLost", err)
	}
	a.Release(fpA)
	if ok, _, _ = b.Claim(fpA); !ok {
		t.Fatal("claim after release failed")
	}
}

func TestAdoptSubmitsForeignSweepsExactlyOnce(t *testing.T) {
	st := sharedStore(t)
	origin := join(t, st, "origin", RolePeer)
	runner := join(t, st, "runner", RoleRunner)

	if err := origin.AnnounceSweep(fpA, "sweep", json.RawMessage(`{"a":1}`), 0); err != nil {
		t.Fatalf("announce: %v", err)
	}
	// An announcement by the runner itself must not be self-adopted.
	if err := runner.AnnounceSweep(fpB, "sweep", json.RawMessage(`{"b":2}`), 0); err != nil {
		t.Fatalf("announce own: %v", err)
	}

	var (
		mu        sync.Mutex
		submitted []string
		fullOnce  = true
	)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		runner.Adopt(stop, func(a Announcement) error {
			mu.Lock()
			defer mu.Unlock()
			if fullOnce {
				// First offer bounces (queue full): the loop must retry.
				fullOnce = false
				return errors.New("queue full")
			}
			submitted = append(submitted, a.Fingerprint)
			return nil
		})
	}()

	deadline := time.After(3 * time.Second)
	for {
		mu.Lock()
		n := len(submitted)
		mu.Unlock()
		if n >= 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("adoption never submitted the foreign sweep")
		case <-time.After(10 * time.Millisecond):
		}
	}
	// Give the loop a few more scans: no re-submission, no self-adoption.
	time.Sleep(150 * time.Millisecond)
	close(stop)
	<-done

	mu.Lock()
	defer mu.Unlock()
	if len(submitted) != 1 || submitted[0] != fpA {
		t.Fatalf("submitted = %v, want exactly [%s]", submitted, fpA)
	}
}

func TestAdoptRetiresFinishedSweeps(t *testing.T) {
	st := sharedStore(t)
	origin := join(t, st, "origin", RolePeer)
	runner := join(t, st, "runner", RoleRunner)

	if err := origin.AnnounceSweep(fpA, "sweep", json.RawMessage(`{}`), 0); err != nil {
		t.Fatalf("announce: %v", err)
	}
	// The sweep's aggregate is already stored: adopting it would waste
	// a whole fan-out.
	if err := st.Put(fpA, []byte(`{"points":[]}`)); err != nil {
		t.Fatalf("store put: %v", err)
	}

	seen := make(map[string]bool)
	runner.adoptOnce(seen, func(a Announcement) error {
		t.Fatalf("finished sweep %s was offered for adoption", a.Fingerprint)
		return nil
	})
	if anns, _ := origin.Announcements(); len(anns) != 0 {
		t.Fatalf("finished announcement not retired: %+v", anns)
	}
}

func TestAdoptReadoptsAfterRetirementAndReannounce(t *testing.T) {
	st := sharedStore(t)
	origin := join(t, st, "origin", RolePeer)
	runner := join(t, st, "runner", RoleRunner)

	seen := make(map[string]bool)
	submitted := 0
	submit := func(Announcement) error { submitted++; return nil }

	if err := origin.AnnounceSweep(fpA, "sweep", json.RawMessage(`{}`), 0); err != nil {
		t.Fatalf("announce: %v", err)
	}
	runner.adoptOnce(seen, submit)
	runner.adoptOnce(seen, submit)
	if submitted != 1 {
		t.Fatalf("first announcement submitted %d times, want 1", submitted)
	}

	// The sweep completes and is retired; much later (say after store
	// GC evicted its records) the origin re-announces the same
	// fingerprint. The runner must adopt it again, not remember it
	// forever.
	origin.CompleteSweep(fpA)
	runner.adoptOnce(seen, submit) // prunes the retired fingerprint
	if err := origin.AnnounceSweep(fpA, "sweep", json.RawMessage(`{}`), 0); err != nil {
		t.Fatalf("re-announce: %v", err)
	}
	runner.adoptOnce(seen, submit)
	if submitted != 2 {
		t.Fatalf("re-announced sweep submitted %d times total, want 2", submitted)
	}
}

// TestNodesLivenessUsesOwnersHeartbeat pins the mixed-TTL case: a
// node heartbeating slowly must be judged by its own cadence, not the
// observer's faster one.
func TestNodesLivenessUsesOwnersHeartbeat(t *testing.T) {
	st := sharedStore(t)
	a := join(t, st, "node-a", RolePeer) // observer heartbeat: 50ms
	slow := NodeInfo{ID: "node-slow", Role: RolePeer,
		StartedAt: time.Now().UTC().Add(-time.Hour),
		LastSeen:  time.Now().UTC().Add(-10 * time.Second),
		Heartbeat: time.Minute}
	if err := a.writeDoc(a.nodePath(slow.ID), slow); err != nil {
		t.Fatalf("plant slow node: %v", err)
	}
	nodes, err := a.Nodes()
	if err != nil {
		t.Fatalf("nodes: %v", err)
	}
	for _, n := range nodes {
		if n.ID == "node-slow" && !n.Alive {
			t.Fatalf("slow-heartbeat node judged dead by a fast observer: %+v", n)
		}
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("host-1.local_9/..x"); got != "host-1.local_9_..x" {
		t.Fatalf("sanitize = %q", got)
	}
}
