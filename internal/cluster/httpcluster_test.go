// Network-native cluster tests: a real coordinator (store + cluster +
// engine + service handler on a loopback listener) and HTTP runners
// joined with no shared filesystem, their RPCs routed through the
// deterministic fault-injection transport. The suites prove the
// exactly-once contract — journal of one entry per point, aggregates
// byte-identical to a single-node run — holds under message drops,
// duplicated deliveries, delays, mid-body disconnects, a network
// partition, and a coordinator restart.
package cluster_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/faulttransport"
	"repro/internal/engine"
	"repro/internal/service"
	"repro/internal/store"
)

// coordNode is the coordinator side: the only node with a data dir,
// serving /v1/cluster/* from its own store and running local workers
// that contend on the same leases the HTTP runners use.
type coordNode struct {
	dir string
	st  *store.Store
	cl  *cluster.Cluster
	eng *engine.Engine
	ts  *httptest.Server
}

func startCoordinator(t *testing.T, workers int) *coordNode {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("open coordinator store: %v", err)
	}
	cl, err := cluster.Join(st, cluster.Config{
		NodeID: "coord", Role: cluster.RoleCoordinator,
		LeaseTTL: 5 * time.Second, Heartbeat: 50 * time.Millisecond,
		Poll: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("join coordinator: %v", err)
	}
	eng := engine.New(engine.Options{Workers: workers, Store: st, Cluster: cl, NodeID: "coord"})
	srv := service.New(eng,
		service.WithCluster(cl),
		service.WithClusterServer(cluster.NewServer(st, cl)))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		shutdownEngine(t, eng)
		cl.Leave()
	})
	return &coordNode{dir: dir, st: st, cl: cl, eng: eng, ts: ts}
}

// runnerNode is one diskless member: an HTTPBackend joined over the
// fault transport, an engine whose result store is the coordinator's
// (via RPC), and the watch loop wired the way cobrad wires it.
type runnerNode struct {
	hb  *cluster.HTTPBackend
	eng *engine.Engine
	ft  *faulttransport.Transport
}

func startRunner(t *testing.T, baseURL, id string, cfg faulttransport.Config) *runnerNode {
	t.Helper()
	ft := faulttransport.New(cfg, nil)
	hb, err := cluster.JoinHTTP(cluster.HTTPConfig{
		BaseURL: baseURL, NodeID: id, Role: cluster.RoleRunner,
		LeaseTTL: 5 * time.Second, Heartbeat: 100 * time.Millisecond,
		Poll:   25 * time.Millisecond,
		Client: &http.Client{Transport: ft, Timeout: 15 * time.Second},
	})
	if err != nil {
		t.Fatalf("join %s over http: %v", id, err)
	}
	eng := engine.New(engine.Options{Workers: 2, Store: hb.RemoteStore(), Cluster: hb, NodeID: id})

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		cluster.Watch(hb, stop, cluster.WatchHooks{
			HasResult: func(fp string) bool {
				_, ok, _ := hb.RemoteStore().Get(fp)
				return ok
			},
			Submit: func(a cluster.Announcement) error {
				if eng.HasLiveFingerprint(a.Fingerprint) {
					return nil
				}
				spec, err := engine.DecodeSpec(a.Kind, a.Spec)
				if err != nil {
					return nil
				}
				_, err = eng.Submit(spec, a.Priority)
				return err
			},
			Cancel: func(fp string, at time.Time) { eng.CancelFingerprint(fp, at) },
		})
	}()
	t.Cleanup(func() {
		close(stop)
		<-done
		shutdownEngine(t, eng)
		hb.Leave()
	})
	return &runnerNode{hb: hb, eng: eng, ft: ft}
}

func shutdownEngine(t *testing.T, eng *engine.Engine) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := eng.Shutdown(ctx); err != nil {
		t.Errorf("engine shutdown: %v", err)
	}
}

// sweep12 is the canonical 12-point sweep the suites drain; the seed
// keeps fingerprints distinct between tests.
func sweep12(seed uint64) *engine.SweepSpec {
	return &engine.SweepSpec{
		Child: "process", Process: "cobra", Family: "cycle",
		Sizes: []int{32, 48, 64, 80, 96, 112, 128, 144, 160, 176, 192, 208},
		K:     2, Trials: 300, Seed: seed,
	}
}

// singleNodeGolden computes the sweep on a plain clusterless engine:
// the byte-level reference every clustered aggregate must match.
func singleNodeGolden(t *testing.T, spec *engine.SweepSpec) []byte {
	t.Helper()
	eng := engine.New(engine.Options{Workers: 4})
	defer shutdownEngine(t, eng)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	out, err := eng.RunSync(ctx, spec)
	if err != nil {
		t.Fatalf("single-node run: %v", err)
	}
	data, err := json.Marshal(out)
	if err != nil {
		t.Fatalf("marshal golden: %v", err)
	}
	return data
}

// assertJournalExactlyOnce demands the ledger holds exactly one entry
// per sweep point: n distinct keys, n total entries — no point lost,
// none double-billed, regardless of which node computed it.
func assertJournalExactlyOnce(t *testing.T, entries []cluster.JournalEntry, n int) {
	t.Helper()
	keys := map[string]int{}
	for _, e := range entries {
		keys[e.Key]++
	}
	if len(keys) != n || len(entries) != n {
		t.Fatalf("journal has %d entries over %d distinct keys, want exactly %d/%d: %+v",
			len(entries), len(keys), n, n, entries)
	}
}

// TestHTTPClusterFaultSchedules drives the 12-point sweep through a
// coordinator and two diskless HTTP runners under seeded fault
// schedules. Whatever the transport does — drop requests, lose
// responses after the server executed, deliver twice, delay, cut
// bodies mid-read — the sweep completes, the journal bills each point
// exactly once, and the aggregate is byte-identical to a single-node
// run.
func TestHTTPClusterFaultSchedules(t *testing.T) {
	cases := []struct {
		name string
		seed uint64
		cfg  faulttransport.Config
		// fired asserts the schedule actually injected something.
		fired func(ft *faulttransport.Transport) int64
	}{
		{
			name: "clean", seed: 101,
			cfg: faulttransport.Config{Seed: 1},
		},
		{
			name: "drops", seed: 102,
			cfg: faulttransport.Config{Seed: 2, DropRequest: 0.15, DropResponse: 0.1},
			fired: func(ft *faulttransport.Transport) int64 {
				return ft.Drops.Load() + ft.ResponseDrops.Load()
			},
		},
		{
			name: "duplicates", seed: 103,
			cfg:   faulttransport.Config{Seed: 3, Duplicate: 0.3},
			fired: func(ft *faulttransport.Transport) int64 { return ft.Duplicates.Load() },
		},
		{
			name: "delays", seed: 104,
			cfg:   faulttransport.Config{Seed: 4, Delay: 0.5, MaxDelay: 40 * time.Millisecond},
			fired: func(ft *faulttransport.Transport) int64 { return ft.Delays.Load() },
		},
		{
			name: "chaos", seed: 105,
			cfg: faulttransport.Config{Seed: 5, DropRequest: 0.1, DropResponse: 0.1,
				Duplicate: 0.2, Delay: 0.3, Disconnect: 0.05},
			fired: func(ft *faulttransport.Transport) int64 {
				return ft.Drops.Load() + ft.ResponseDrops.Load() +
					ft.Duplicates.Load() + ft.Delays.Load() + ft.Disconnects.Load()
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := sweep12(tc.seed)
			golden := singleNodeGolden(t, spec)

			coord := startCoordinator(t, 1)
			r1 := startRunner(t, coord.ts.URL, "runner-1", tc.cfg)
			r2 := startRunner(t, coord.ts.URL, "runner-2",
				faulttransport.Config{Seed: tc.cfg.Seed + 1000, DropRequest: tc.cfg.DropRequest,
					DropResponse: tc.cfg.DropResponse, Duplicate: tc.cfg.Duplicate,
					Delay: tc.cfg.Delay, MaxDelay: tc.cfg.MaxDelay, Disconnect: tc.cfg.Disconnect})

			job, err := coord.eng.Submit(spec, 0)
			if err != nil {
				t.Fatalf("submit sweep: %v", err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			out, err := job.Wait(ctx)
			if err != nil {
				t.Fatalf("sweep under %s schedule: %v", tc.name, err)
			}
			if data, _ := json.Marshal(out); string(data) != string(golden) {
				t.Errorf("clustered aggregate differs from single-node run:\n%s\n%s", data, golden)
			}

			entries, err := coord.cl.Journal()
			if err != nil {
				t.Fatalf("journal: %v", err)
			}
			assertJournalExactlyOnce(t, entries, 12)

			if tc.fired != nil {
				if n := tc.fired(r1.ft) + tc.fired(r2.ft); n == 0 {
					t.Errorf("%s schedule injected nothing across %d requests",
						tc.name, r1.ft.Requests.Load()+r2.ft.Requests.Load())
				}
			}
		})
	}
}

// TestHTTPClusterPartitionHeals cuts one runner off mid-sweep for a
// window shorter than the RPC retry budget: its in-flight operations
// ride out the partition, the sweep completes, and the journal still
// bills each point exactly once.
func TestHTTPClusterPartitionHeals(t *testing.T) {
	spec := sweep12(201)
	golden := singleNodeGolden(t, spec)

	coord := startCoordinator(t, 1)
	r1 := startRunner(t, coord.ts.URL, "runner-1", faulttransport.Config{Seed: 11})
	r2 := startRunner(t, coord.ts.URL, "runner-2", faulttransport.Config{Seed: 12})

	job, err := coord.eng.Submit(spec, 0)
	if err != nil {
		t.Fatalf("submit sweep: %v", err)
	}
	// Partition runner-2 once the sweep is moving, heal it after 1s —
	// inside the backend's ~4.5s retry budget, so claims and result
	// pushes in flight when the cable was cut complete after the heal
	// instead of erroring.
	deadline := time.After(30 * time.Second)
	for {
		entries, _ := coord.cl.Journal()
		if len(entries) >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("sweep never started computing")
		case <-time.After(5 * time.Millisecond):
		}
	}
	r2.ft.SetPartitioned(true)
	time.Sleep(time.Second)
	r2.ft.SetPartitioned(false)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	out, err := job.Wait(ctx)
	if err != nil {
		t.Fatalf("sweep across partition: %v", err)
	}
	if data, _ := json.Marshal(out); string(data) != string(golden) {
		t.Errorf("aggregate differs from single-node run after partition:\n%s\n%s", data, golden)
	}
	entries, err := coord.cl.Journal()
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	assertJournalExactlyOnce(t, entries, 12)
	if r2.ft.Partitioned.Load() == 0 {
		t.Error("partition window injected nothing; the test proved less than it claims")
	}
	_ = r1
}

// swapHandler atomically swaps the handler behind one listener, so a
// coordinator can "crash" (serve 503) and come back as a new process
// on the same address.
type swapHandler struct{ h atomic.Value }

func (s *swapHandler) set(h http.Handler) { s.h.Store(&h) }
func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*s.h.Load().(*http.Handler)).ServeHTTP(w, r)
}

// TestHTTPClusterCoordinatorRestart kills the coordinator process
// mid-sweep — 503s on its address — and brings up a fresh one over the
// same data dir. The sweep was submitted to a runner, so its parent
// survives; lease fencing tokens live in the lease files, so renewals
// issued across the restart are still honored; and the journal comes
// out exactly-once because every mutation that failed during the
// outage was an idempotent retry.
func TestHTTPClusterCoordinatorRestart(t *testing.T) {
	spec := sweep12(301)
	golden := singleNodeGolden(t, spec)

	dir := t.TempDir()
	boot := func() (*store.Store, *cluster.Cluster, *engine.Engine, http.Handler) {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatalf("open coordinator store: %v", err)
		}
		cl, err := cluster.Join(st, cluster.Config{
			NodeID: "coord", Role: cluster.RoleCoordinator,
			LeaseTTL: 5 * time.Second, Heartbeat: 50 * time.Millisecond,
			Poll: 25 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("join coordinator: %v", err)
		}
		eng := engine.New(engine.Options{Workers: 1, Store: st, Cluster: cl, NodeID: "coord"})
		srv := service.New(eng,
			service.WithCluster(cl),
			service.WithClusterServer(cluster.NewServer(st, cl)))
		return st, cl, eng, srv.Handler()
	}

	swap := &swapHandler{}
	_, cl1, eng1, h1 := boot()
	swap.set(h1)
	ts := httptest.NewServer(swap)
	t.Cleanup(ts.Close)

	r1 := startRunner(t, ts.URL, "runner-1", faulttransport.Config{Seed: 21})
	r2 := startRunner(t, ts.URL, "runner-2", faulttransport.Config{Seed: 22})
	_ = r2

	// The sweep's owner is runner-1: its parent must outlive the
	// coordinator it pushes results through.
	job, err := r1.eng.Submit(spec, 0)
	if err != nil {
		t.Fatalf("submit sweep to runner: %v", err)
	}

	deadline := time.After(30 * time.Second)
	for {
		entries, _ := cl1.Journal()
		if len(entries) >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("sweep never started computing")
		case <-time.After(5 * time.Millisecond):
		}
	}

	// Crash: the address answers 503 while the old process dies and the
	// new one boots over the same data dir. The outage is held at 600ms
	// — well inside the runners' retry budget.
	swap.set(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":{"code":"unavailable","message":"coordinator restarting"}}`,
			http.StatusServiceUnavailable)
	}))
	shutdownEngine(t, eng1)
	cl1.Leave()
	time.Sleep(600 * time.Millisecond)
	_, cl2, eng2, h2 := boot()
	swap.set(h2)
	t.Cleanup(func() {
		shutdownEngine(t, eng2)
		cl2.Leave()
	})

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	out, err := job.Wait(ctx)
	if err != nil {
		t.Fatalf("sweep across coordinator restart: %v", err)
	}
	if data, _ := json.Marshal(out); string(data) != string(golden) {
		t.Errorf("aggregate differs from single-node run after restart:\n%s\n%s", data, golden)
	}
	entries, err := cl2.Journal()
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	assertJournalExactlyOnce(t, entries, 12)
}

// TestHTTPClusterCancellationPropagates publishes a cancellation for a
// long-running sweep announced by one runner and checks a peer's watch
// loop kills its adopted copy — cancellation crossing nodes purely
// over RPC.
func TestHTTPClusterCancellationPropagates(t *testing.T) {
	coord := startCoordinator(t, 1)
	r1 := startRunner(t, coord.ts.URL, "runner-1", faulttransport.Config{Seed: 31})
	r2 := startRunner(t, coord.ts.URL, "runner-2", faulttransport.Config{Seed: 32})

	// A sweep big enough not to finish before the cancel lands.
	spec := &engine.SweepSpec{
		Child: "process", Process: "cobra", Family: "cycle",
		Sizes: []int{64, 96, 128, 160, 192, 224, 256, 288, 320, 352, 384, 416},
		K:     2, Trials: 20, Seed: 401,
	}
	job, err := r1.eng.Submit(spec, 0)
	if err != nil {
		t.Fatalf("submit sweep: %v", err)
	}
	fp := job.Fingerprint()

	// Wait until runner-2 adopted its copy.
	deadline := time.After(30 * time.Second)
	var adopted *engine.Job
	for adopted == nil {
		for _, j := range r2.eng.Jobs() {
			if j.Fingerprint() == fp {
				adopted = j
			}
		}
		select {
		case <-deadline:
			t.Fatal("peer never adopted the announced sweep")
		case <-time.After(10 * time.Millisecond):
		}
	}

	// Cancel on the owner; the cluster RPC + runner-2's watch loop must
	// kill the adopted copy too.
	if !r1.eng.Cancel(job.ID()) {
		t.Fatal("owner cancel refused")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := job.Wait(ctx); err == nil {
		t.Fatal("canceled sweep reported success on the owner")
	}
	if _, err := adopted.Wait(ctx); err == nil {
		t.Fatal("adopted copy of a canceled sweep reported success")
	}
	if st := adopted.Snapshot(); st.State != engine.Canceled {
		t.Fatalf("adopted copy state = %v, want canceled", st.State)
	}
}

// TestCompletedSweepPublishesNoCancellation pins the terminal-switch
// ordering in the sweep coordinator: finishJob releases the parent's
// context as cleanup, so deciding "was this sweep canceled?" by
// re-reading ctx.Err() afterwards claims every completed sweep was
// canceled — publishing a cancellation record that kills peers'
// still-running copies of the same sweep. A successful sweep must
// leave the cancellation queue empty.
func TestCompletedSweepPublishesNoCancellation(t *testing.T) {
	coord := startCoordinator(t, 2)
	spec := &engine.SweepSpec{
		Child: "process", Process: "cobra", Family: "cycle",
		Sizes: []int{16, 24}, K: 2, Trials: 50, Seed: 501,
	}
	job, err := coord.eng.Submit(spec, 0)
	if err != nil {
		t.Fatalf("submit sweep: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := job.Wait(ctx); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	// The (buggy) publication happened right after the parent finished;
	// give it a beat so the assertion actually guards the ordering.
	time.Sleep(300 * time.Millisecond)
	recs, err := coord.cl.Cancellations()
	if err != nil {
		t.Fatalf("cancellations: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("completed sweep published cancellation records: %+v", recs)
	}
}
