package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/retry"
	"repro/internal/store"
)

// Wire types of the /v1/cluster/* protocol, shared by HTTPBackend and
// the service handlers so the two halves cannot drift.
type (
	// LeaseAcquireRequest is the POST /v1/cluster/leases body.
	LeaseAcquireRequest struct {
		Key       string `json:"key"`
		Holder    string `json:"holder"`
		TTLMillis int64  `json:"ttl_ms,omitempty"`
	}
	// LeaseMutateRequest is the renew/release body; Token fences the
	// mutation to the acquisition that minted it.
	LeaseMutateRequest struct {
		Holder    string `json:"holder"`
		Token     int64  `json:"token"`
		TTLMillis int64  `json:"ttl_ms,omitempty"`
	}
	// LeaseResponse reports the acquire/renew outcome.
	LeaseResponse struct {
		Acquired bool        `json:"acquired"`
		Lease    store.Lease `json:"lease"`
	}
	// JournalRecordRequest is the POST /v1/cluster/journal body.
	JournalRecordRequest struct {
		Key  string `json:"key"`
		Node string `json:"node"`
	}
	// AnnounceRequest is the POST /v1/cluster/sweeps body.
	AnnounceRequest struct {
		Fingerprint string          `json:"fingerprint"`
		Origin      string          `json:"origin"`
		Kind        string          `json:"kind"`
		Priority    int             `json:"priority"`
		Spec        json.RawMessage `json:"spec"`
	}
	// CancelRequest is the POST /v1/cluster/cancels body.
	CancelRequest struct {
		Fingerprint string `json:"fingerprint"`
		Node        string `json:"node"`
	}
)

// HTTPConfig configures a cluster member that joins over the network
// instead of a shared data directory.
type HTTPConfig struct {
	// BaseURL is the coordinator's API base, e.g. "http://10.0.0.1:8080".
	BaseURL string
	// NodeID, Addr, LeaseTTL, Heartbeat, Poll behave exactly as in
	// Config. Role defaults to RoleRunner and must not be
	// RoleCoordinator — the coordinator is the node the URL points at.
	NodeID    string
	Role      Role
	Addr      string
	LeaseTTL  time.Duration
	Heartbeat time.Duration
	Poll      time.Duration
	// Client optionally overrides the HTTP client — the hook where the
	// fault-injection transport wraps in. Defaults to a 15s-timeout
	// client.
	Client *http.Client
	// Retry optionally overrides the RPC retry policy. The default
	// rides out a few seconds of coordinator outage or partition before
	// an operation is reported failed.
	Retry retry.Policy
}

// HTTPBackend is the network-native cluster Backend: every operation
// is an RPC against the coordinator's /v1/cluster/* routes, arbitrated
// coordinator-side against the same store its local workers use.
// Node discovery replaces heartbeat files with registration RPCs: the
// member re-POSTs its node record every heartbeat interval and the
// coordinator stamps last-seen with its own clock, so liveness
// (3 missed intervals) is immune to cross-machine clock skew.
//
// Lease claims return a fencing token that the backend holds privately
// per key and presents on every renew/release, so delayed or
// duplicated mutations from a lost lease are rejected server-side.
type HTTPBackend struct {
	cfg     Config
	rpc     *rpcClient
	rs      *RemoteStore
	started time.Time

	mu     sync.Mutex
	tokens map[string]int64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

var _ Backend = (*HTTPBackend)(nil)

// JoinHTTP registers this process with the coordinator at
// cfg.BaseURL and starts the heartbeat loop. The initial registration
// is synchronous: an unreachable or non-clustered coordinator fails
// the join instead of surfacing later as mysterious lease errors.
// Call Leave on shutdown.
func JoinHTTP(cfg HTTPConfig) (*HTTPBackend, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("cluster: join over http: base url required")
	}
	if _, err := url.Parse(cfg.BaseURL); err != nil {
		return nil, fmt.Errorf("cluster: join over http: bad base url %q: %w", cfg.BaseURL, err)
	}
	if cfg.Role == "" {
		cfg.Role = RoleRunner
	}
	if cfg.Role == RoleCoordinator {
		return nil, fmt.Errorf("cluster: a coordinator owns the store; it cannot join itself over http")
	}
	inner, err := Config{
		NodeID: cfg.NodeID, Role: cfg.Role, Addr: cfg.Addr,
		LeaseTTL: cfg.LeaseTTL, Heartbeat: cfg.Heartbeat, Poll: cfg.Poll,
	}.withDefaults()
	if err != nil {
		return nil, err
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{Timeout: 15 * time.Second}
	}
	policy := cfg.Retry
	if policy.MaxAttempts == 0 && policy.BaseDelay == 0 {
		policy = retry.Policy{MaxAttempts: 8, BaseDelay: 100 * time.Millisecond,
			MaxDelay: time.Second, Jitter: 0.2}
	}
	b := &HTTPBackend{
		cfg:     inner,
		rpc:     newRPCClient(cfg.BaseURL, hc, policy),
		started: time.Now().UTC(),
		tokens:  make(map[string]int64),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	b.rs = &RemoteStore{rpc: b.rpc, known: make(map[string]struct{})}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.register(ctx); err != nil {
		return nil, fmt.Errorf("cluster: join %s: %w", cfg.BaseURL, err)
	}
	go b.heartbeatLoop()
	return b, nil
}

func (b *HTTPBackend) register(ctx context.Context) error {
	n := NodeInfo{
		ID: b.cfg.NodeID, Role: b.cfg.Role, Addr: b.cfg.Addr,
		StartedAt: b.started, Heartbeat: b.cfg.Heartbeat,
	}
	return b.rpc.do(ctx, http.MethodPost, "/v1/cluster/nodes", n, nil)
}

func (b *HTTPBackend) heartbeatLoop() {
	defer close(b.done)
	ticker := time.NewTicker(b.cfg.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-ticker.C:
			ctx, cancel := context.WithTimeout(context.Background(), b.cfg.Heartbeat*3)
			_ = b.register(ctx) // best effort; a missed beat only ages liveness
			cancel()
		}
	}
}

// Leave stops the heartbeat loop and unregisters from the coordinator
// (best effort — a lost deregistration just leaves a record to go
// stale).
func (b *HTTPBackend) Leave() {
	b.stopOnce.Do(func() { close(b.stop) })
	<-b.done
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = b.rpc.do(ctx, http.MethodDelete, "/v1/cluster/nodes/"+url.PathEscape(b.cfg.NodeID), nil, nil)
}

// NodeID returns this node's identity.
func (b *HTTPBackend) NodeID() string { return b.cfg.NodeID }

// Role returns this node's role.
func (b *HTTPBackend) Role() Role { return b.cfg.Role }

// LeaseTTL returns the configured lease TTL.
func (b *HTTPBackend) LeaseTTL() time.Duration { return b.cfg.LeaseTTL }

// Heartbeat returns the lease/registry renewal cadence.
func (b *HTTPBackend) Heartbeat() time.Duration { return b.cfg.Heartbeat }

// Poll returns the wait/adoption polling cadence.
func (b *HTTPBackend) Poll() time.Duration { return b.cfg.Poll }

// RemoteStore returns the coordinator-replicated result store this
// membership reads and pushes results through.
func (b *HTTPBackend) RemoteStore() *RemoteStore { return b.rs }

// Claim attempts to take this node's lease on key via the
// coordinator. On success the lease's fencing token is retained for
// the renew/release that follow.
func (b *HTTPBackend) Claim(key string) (bool, store.Lease, error) {
	var resp LeaseResponse
	err := b.rpc.do(context.Background(), http.MethodPost, "/v1/cluster/leases",
		LeaseAcquireRequest{Key: key, Holder: b.cfg.NodeID, TTLMillis: b.cfg.LeaseTTL.Milliseconds()},
		&resp)
	if err != nil {
		return false, store.Lease{}, err
	}
	if resp.Acquired {
		b.mu.Lock()
		b.tokens[key] = resp.Lease.Token
		b.mu.Unlock()
	}
	return resp.Acquired, resp.Lease, nil
}

func (b *HTTPBackend) token(key string) (int64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.tokens[key]
	return t, ok
}

func (b *HTTPBackend) forget(key string) {
	b.mu.Lock()
	delete(b.tokens, key)
	b.mu.Unlock()
}

// Renew extends this node's lease on key. A fencing rejection — the
// lease expired and was reclaimed while this node stalled — reports
// store.ErrLeaseLost, exactly like the filesystem backend.
func (b *HTTPBackend) Renew(key string) error {
	token, ok := b.token(key)
	if !ok {
		return store.ErrLeaseLost
	}
	err := b.rpc.do(context.Background(), http.MethodPost,
		"/v1/cluster/leases/"+url.PathEscape(key)+"/renew",
		LeaseMutateRequest{Holder: b.cfg.NodeID, Token: token, TTLMillis: b.cfg.LeaseTTL.Milliseconds()},
		nil)
	if re, isRPC := err.(*rpcError); isRPC && re.Status == http.StatusConflict {
		b.forget(key)
		return store.ErrLeaseLost
	}
	return err
}

// Release drops this node's lease on key, if still held. Best effort:
// an unreachable coordinator just lets the lease expire, and a fencing
// rejection means the lease was already reclaimed.
func (b *HTTPBackend) Release(key string) {
	token, ok := b.token(key)
	if !ok {
		return
	}
	b.forget(key)
	_ = b.rpc.do(context.Background(), http.MethodPost,
		"/v1/cluster/leases/"+url.PathEscape(key)+"/release",
		LeaseMutateRequest{Holder: b.cfg.NodeID, Token: token}, nil)
}

// RecordComputed journals that this node computed key. Best effort,
// and create-if-absent server-side per key, so transport retries
// and duplicate deliveries cannot mint duplicate ledger entries.
func (b *HTTPBackend) RecordComputed(key string) {
	_ = b.rpc.do(context.Background(), http.MethodPost, "/v1/cluster/journal",
		JournalRecordRequest{Key: key, Node: b.cfg.NodeID}, nil)
}

// Journal returns the cluster-wide compute ledger.
func (b *HTTPBackend) Journal() ([]JournalEntry, error) {
	var resp struct {
		Entries []JournalEntry `json:"entries"`
	}
	if err := b.rpc.do(context.Background(), http.MethodGet, "/v1/cluster/journal", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// AnnounceSweep publishes a sweep through the coordinator,
// create-if-absent like the filesystem backend.
func (b *HTTPBackend) AnnounceSweep(fp, kind string, spec json.RawMessage, priority int) error {
	return b.rpc.do(context.Background(), http.MethodPost, "/v1/cluster/sweeps",
		AnnounceRequest{Fingerprint: fp, Origin: b.cfg.NodeID, Kind: kind,
			Priority: priority, Spec: spec}, nil)
}

// CompleteSweep retires a sweep's announcement; idempotent.
func (b *HTTPBackend) CompleteSweep(fp string) {
	_ = b.rpc.do(context.Background(), http.MethodDelete,
		"/v1/cluster/sweeps/"+url.PathEscape(fp), nil, nil)
}

// Announcements returns the currently published sweeps, oldest first.
func (b *HTTPBackend) Announcements() ([]Announcement, error) {
	var resp struct {
		Announcements []Announcement `json:"announcements"`
	}
	if err := b.rpc.do(context.Background(), http.MethodGet, "/v1/cluster/sweeps", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Announcements, nil
}

// CancelSweep publishes a cross-node cancellation for fp.
func (b *HTTPBackend) CancelSweep(fp string) error {
	return b.rpc.do(context.Background(), http.MethodPost, "/v1/cluster/cancels",
		CancelRequest{Fingerprint: fp, Node: b.cfg.NodeID}, nil)
}

// Cancellations returns the live cancellation records.
func (b *HTTPBackend) Cancellations() ([]CancelRecord, error) {
	var resp struct {
		Cancellations []CancelRecord `json:"cancellations"`
	}
	if err := b.rpc.do(context.Background(), http.MethodGet, "/v1/cluster/cancels", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Cancellations, nil
}

// Nodes returns the coordinator's registry view of the cluster.
func (b *HTTPBackend) Nodes() ([]NodeInfo, error) {
	var resp struct {
		Nodes []NodeInfo `json:"nodes"`
	}
	if err := b.rpc.do(context.Background(), http.MethodGet, "/v1/cluster/nodes", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Nodes, nil
}
