// Package faulttransport is a deterministic fault-injection
// http.RoundTripper for exercising the cluster RPC path: it wraps any
// transport and, from a seeded RNG, injects dropped requests, dropped
// responses (the server executed, the reply was lost — the case that
// proves re-push safety), duplicated deliveries (the server executes
// twice — the case that proves idempotency), artificial delays, and
// mid-body disconnects. A partition gate blackholes everything while
// toggled, modeling a network split or a coordinator outage.
//
// All randomness flows from the seed given at construction, so a
// test's fault schedule replays identically run to run; counters
// record what was actually injected so assertions can demand the
// faults really happened.
package faulttransport

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is wrapped by every failure this transport fabricates,
// so tests (and retry classifiers) can tell injected faults from real
// ones.
var ErrInjected = errors.New("faulttransport: injected fault")

// Config sets the per-request fault probabilities, each in [0, 1] and
// rolled independently.
type Config struct {
	// Seed feeds the RNG; the same seed yields the same schedule.
	Seed int64
	// DropRequest is the probability the request never reaches the
	// server.
	DropRequest float64
	// DropResponse is the probability the server executes the request
	// but the response is lost on the way back.
	DropResponse float64
	// Duplicate is the probability the request is delivered twice
	// (a retrying proxy); the caller sees the second response.
	Duplicate float64
	// Delay is the probability a request is delayed before delivery.
	Delay float64
	// MaxDelay bounds an injected delay; defaults to 50ms.
	MaxDelay time.Duration
	// Disconnect is the probability the response body is cut after a
	// random prefix, so the client errors mid-read.
	Disconnect float64
}

// Transport implements http.RoundTripper with fault injection in
// front of a real transport.
type Transport struct {
	cfg  Config
	next http.RoundTripper

	mu  sync.Mutex
	rng *rand.Rand

	partitioned atomic.Bool

	// Counters of injected faults and total traffic, for assertions.
	Requests      atomic.Int64
	Drops         atomic.Int64
	ResponseDrops atomic.Int64
	Duplicates    atomic.Int64
	Delays        atomic.Int64
	Disconnects   atomic.Int64
	Partitioned   atomic.Int64
}

// New wraps next (nil selects http.DefaultTransport) in a seeded
// fault injector.
func New(cfg Config, next http.RoundTripper) *Transport {
	if next == nil {
		next = http.DefaultTransport
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 50 * time.Millisecond
	}
	return &Transport{cfg: cfg, next: next, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// SetPartitioned toggles the blackhole gate: while on, every round
// trip fails without reaching the server.
func (t *Transport) SetPartitioned(on bool) { t.partitioned.Store(on) }

// roll draws the per-request fault decisions in one locked batch, so
// the RNG stream consumption per request is fixed regardless of which
// faults fire — concurrency may interleave requests, but a
// single-threaded caller replays exactly.
type decisions struct {
	dropRequest  bool
	dropResponse bool
	duplicate    bool
	delay        time.Duration
	disconnect   bool
	cutAfter     int
}

func (t *Transport) roll() decisions {
	t.mu.Lock()
	defer t.mu.Unlock()
	var d decisions
	d.dropRequest = t.rng.Float64() < t.cfg.DropRequest
	d.dropResponse = t.rng.Float64() < t.cfg.DropResponse
	d.duplicate = t.rng.Float64() < t.cfg.Duplicate
	if t.rng.Float64() < t.cfg.Delay {
		d.delay = time.Duration(t.rng.Int63n(int64(t.cfg.MaxDelay) + 1))
	}
	d.disconnect = t.rng.Float64() < t.cfg.Disconnect
	d.cutAfter = t.rng.Intn(512)
	return d
}

// RoundTrip delivers one request through the fault schedule.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.Requests.Add(1)
	if t.partitioned.Load() {
		t.Partitioned.Add(1)
		drainRequest(req)
		return nil, fmt.Errorf("%w: partitioned (%s %s)", ErrInjected, req.Method, req.URL.Path)
	}
	d := t.roll()

	// Buffer the body so dropped and duplicated deliveries can resend
	// it; cluster RPC bodies are small by construction.
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("faulttransport: buffer request body: %w", err)
		}
	}

	if d.delay > 0 {
		t.Delays.Add(1)
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(d.delay):
		}
	}
	if d.dropRequest {
		t.Drops.Add(1)
		return nil, fmt.Errorf("%w: request dropped (%s %s)", ErrInjected, req.Method, req.URL.Path)
	}

	resp, err := t.deliver(req, body)
	if err != nil {
		return nil, err
	}
	if d.duplicate {
		// The first delivery happened; its response is discarded and
		// the request is delivered again, like a retrying proxy. The
		// server must treat the redelivery as idempotent.
		t.Duplicates.Add(1)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp, err = t.deliver(req, body); err != nil {
			return nil, err
		}
	}
	if d.dropResponse {
		t.ResponseDrops.Add(1)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("%w: response dropped (%s %s)", ErrInjected, req.Method, req.URL.Path)
	}
	if d.disconnect {
		t.Disconnects.Add(1)
		resp.Body = &cutBody{rc: resp.Body, remain: d.cutAfter}
	}
	return resp, nil
}

func (t *Transport) deliver(req *http.Request, body []byte) (*http.Response, error) {
	clone := req.Clone(req.Context())
	if body != nil {
		clone.Body = io.NopCloser(bytes.NewReader(body))
		clone.ContentLength = int64(len(body))
	}
	return t.next.RoundTrip(clone)
}

func drainRequest(req *http.Request) {
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
}

// cutBody yields remain bytes of the underlying body and then fails,
// modeling a connection torn down mid-response.
type cutBody struct {
	rc     io.ReadCloser
	remain int
}

func (c *cutBody) Read(p []byte) (int, error) {
	if c.remain <= 0 {
		return 0, fmt.Errorf("%w: connection cut mid-body", ErrInjected)
	}
	if len(p) > c.remain {
		p = p[:c.remain]
	}
	n, err := c.rc.Read(p)
	c.remain -= n
	if err == io.EOF {
		return n, err // body ended before the cut: deliver intact
	}
	return n, err
}

func (c *cutBody) Close() error { return c.rc.Close() }
