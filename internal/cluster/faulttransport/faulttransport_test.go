package faulttransport

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func countingServer(t *testing.T, hits *atomic.Int64, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, tr *Transport, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatalf("build request: %v", err)
	}
	return tr.RoundTrip(req)
}

func TestCleanTransportPassesThrough(t *testing.T) {
	var hits atomic.Int64
	ts := countingServer(t, &hits, "ok")
	tr := New(Config{Seed: 1}, nil)
	resp, err := get(t, tr, ts.URL)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || string(data) != "ok" {
		t.Fatalf("body = %q, %v", data, err)
	}
	if hits.Load() != 1 || tr.Requests.Load() != 1 {
		t.Fatalf("hits = %d, requests = %d", hits.Load(), tr.Requests.Load())
	}
}

// TestSeededScheduleIsDeterministic replays the same seed twice over a
// single-threaded request sequence and demands identical fault
// decisions.
func TestSeededScheduleIsDeterministic(t *testing.T) {
	var hits atomic.Int64
	ts := countingServer(t, &hits, "ok")
	run := func(seed int64) []bool {
		tr := New(Config{Seed: seed, DropRequest: 0.5}, nil)
		outcomes := make([]bool, 0, 32)
		for i := 0; i < 32; i++ {
			resp, err := get(t, tr, ts.URL)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at request %d: %v vs %v", i, a, b)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical 32-request schedules")
	}
}

func TestDropRequestNeverReachesServer(t *testing.T) {
	var hits atomic.Int64
	ts := countingServer(t, &hits, "ok")
	tr := New(Config{Seed: 7, DropRequest: 1}, nil)
	if _, err := get(t, tr, ts.URL); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if hits.Load() != 0 || tr.Drops.Load() != 1 {
		t.Fatalf("hits = %d, drops = %d", hits.Load(), tr.Drops.Load())
	}
}

// TestDropResponseExecutesServerSide pins the lost-response case: the
// server handled the request exactly once, the client saw an error —
// the shape that makes idempotent re-push mandatory.
func TestDropResponseExecutesServerSide(t *testing.T) {
	var hits atomic.Int64
	ts := countingServer(t, &hits, "ok")
	tr := New(Config{Seed: 7, DropResponse: 1}, nil)
	if _, err := get(t, tr, ts.URL); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if hits.Load() != 1 || tr.ResponseDrops.Load() != 1 {
		t.Fatalf("hits = %d, response drops = %d", hits.Load(), tr.ResponseDrops.Load())
	}
}

// TestDuplicateDeliversTwice pins the redelivery case: one client
// call, two server executions, one response returned.
func TestDuplicateDeliversTwice(t *testing.T) {
	var hits atomic.Int64
	ts := countingServer(t, &hits, "ok")
	tr := New(Config{Seed: 7, Duplicate: 1}, nil)
	resp, err := get(t, tr, ts.URL)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if hits.Load() != 2 || tr.Duplicates.Load() != 1 {
		t.Fatalf("hits = %d, duplicates = %d, want 2 deliveries", hits.Load(), tr.Duplicates.Load())
	}
}

// TestDuplicatePreservesRequestBody ensures both deliveries carry the
// full body — a redelivered mutation must not arrive truncated.
func TestDuplicatePreservesRequestBody(t *testing.T) {
	var bodies []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		data, _ := io.ReadAll(r.Body)
		bodies = append(bodies, string(data))
	}))
	t.Cleanup(ts.Close)
	tr := New(Config{Seed: 7, Duplicate: 1}, nil)
	req, _ := http.NewRequest(http.MethodPost, ts.URL, strings.NewReader(`{"key":"k"}`))
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	resp.Body.Close()
	if len(bodies) != 2 || bodies[0] != `{"key":"k"}` || bodies[1] != `{"key":"k"}` {
		t.Fatalf("delivered bodies = %q", bodies)
	}
}

func TestDisconnectCutsBodyMidRead(t *testing.T) {
	var hits atomic.Int64
	ts := countingServer(t, &hits, strings.Repeat("x", 1<<16))
	tr := New(Config{Seed: 7, Disconnect: 1}, nil)
	resp, err := get(t, tr, ts.URL)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	defer resp.Body.Close()
	_, err = io.ReadAll(resp.Body)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("read err = %v, want mid-body cut", err)
	}
	if tr.Disconnects.Load() != 1 {
		t.Fatalf("disconnects = %d", tr.Disconnects.Load())
	}
}

func TestDelayInjectsLatency(t *testing.T) {
	var hits atomic.Int64
	ts := countingServer(t, &hits, "ok")
	tr := New(Config{Seed: 9, Delay: 1, MaxDelay: 30 * time.Millisecond}, nil)
	for i := 0; i < 8; i++ {
		resp, err := get(t, tr, ts.URL)
		if err != nil {
			t.Fatalf("round trip %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if tr.Delays.Load() != 8 {
		t.Fatalf("delays = %d, want 8", tr.Delays.Load())
	}
}

func TestPartitionGateBlackholes(t *testing.T) {
	var hits atomic.Int64
	ts := countingServer(t, &hits, "ok")
	tr := New(Config{Seed: 7}, nil)
	tr.SetPartitioned(true)
	if _, err := get(t, tr, ts.URL); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if hits.Load() != 0 || tr.Partitioned.Load() != 1 {
		t.Fatalf("hits = %d, partitioned = %d", hits.Load(), tr.Partitioned.Load())
	}
	tr.SetPartitioned(false)
	resp, err := get(t, tr, ts.URL)
	if err != nil {
		t.Fatalf("post-heal round trip: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if hits.Load() != 1 {
		t.Fatalf("post-heal hits = %d", hits.Load())
	}
}
