package cluster

import (
	"context"
	"net/url"
	"sync"
)

// RemoteStore is the coordinator-replicated result store of an HTTP
// cluster membership: reads and writes are RPCs against the
// coordinator's /v1/cluster/results/{key} routes, backed by the same
// content-addressed store its local workers use. It satisfies the
// engine's ResultStore interface, so a runner joined over -cluster-url
// needs no shared data directory at all.
//
// Pushes are safe to repeat: records are content-addressed, so a
// re-push after a lost response rewrites identical bytes; the RPC
// layer retries freely on that basis.
type RemoteStore struct {
	rpc *rpcClient

	mu sync.Mutex
	// known tracks the keys this node has observed in the remote store
	// (hits and pushes), feeding the local store-entries gauge; it is
	// not a cache.
	known map[string]struct{}
}

func resultPath(key string) string {
	return "/v1/cluster/results/" + url.PathEscape(key)
}

// Get fetches the record for key; a coordinator-side miss reports
// found=false with no error, like a local store miss.
func (r *RemoteStore) Get(key string) ([]byte, bool, error) {
	data, ok, err := r.rpc.getRaw(context.Background(), resultPath(key))
	if ok {
		r.observe(key)
	}
	return data, ok, err
}

// Put pushes the record for key to the coordinator.
func (r *RemoteStore) Put(key string, payload []byte) error {
	if err := r.rpc.putRaw(context.Background(), resultPath(key), payload); err != nil {
		return err
	}
	r.observe(key)
	return nil
}

// Len reports how many distinct remote records this node has
// observed — a local, session-scoped view for the metrics gauge, not
// the coordinator's store size.
func (r *RemoteStore) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.known)
}

func (r *RemoteStore) observe(key string) {
	r.mu.Lock()
	r.known[key] = struct{}{}
	r.mu.Unlock()
}
