package graphstore

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/store"
)

// countingBuild wraps the default builder with an atomic build counter.
func countingBuild(n *atomic.Int64) func(spec string, seed uint64) (*graph.Graph, error) {
	return func(spec string, seed uint64) (*graph.Graph, error) {
		n.Add(1)
		return defaultBuildForTest(spec, seed)
	}
}

// defaultBuildForTest builds without a store, mirroring cli.ParseGraph
// via the package default.
var defaultBuildForTest = directBuilder{}.Resolve

func open(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustResolveTier(t *testing.T, s *Store, spec string, seed uint64) (*graph.Graph, Tier) {
	t.Helper()
	g, tier, err := s.ResolveTier(spec, seed)
	if err != nil {
		t.Fatalf("resolve %q seed %d: %v", spec, seed, err)
	}
	return g, tier
}

func TestFingerprintStability(t *testing.T) {
	// Pinned: changing the graph fingerprint scheme silently invalidates
	// every stored artifact, so it must be deliberate.
	const want = "8670171103519a3e8eac0aba525cc95082f63554699ab2ac37703e3da6cc4fbb"
	if got := Fingerprint("regular:4096,5", 1); got != want {
		t.Fatalf("Fingerprint(regular:4096,5, 1) = %s, want %s", got, want)
	}
	if Fingerprint("regular:4096,5", 1) == Fingerprint("regular:4096,5", 2) {
		t.Fatal("seed does not perturb the fingerprint")
	}
	if Fingerprint("grid:2,16", 0) == Fingerprint("grid:2,17", 0) {
		t.Fatal("spec does not perturb the fingerprint")
	}
}

func TestResolveTiers(t *testing.T) {
	var builds atomic.Int64
	dir := t.TempDir()
	s := open(t, Options{Dir: dir, Build: countingBuild(&builds)})

	g1, tier := mustResolveTier(t, s, "cycle:64", 0)
	if tier != TierBuild {
		t.Fatalf("first resolve tier = %v, want build", tier)
	}
	g2, tier := mustResolveTier(t, s, "cycle:64", 0)
	if tier != TierMem {
		t.Fatalf("second resolve tier = %v, want mem", tier)
	}
	if g1 != g2 {
		t.Fatal("mem tier returned a different graph instance")
	}
	s.Release(g1)
	s.Release(g2)
	if builds.Load() != 1 {
		t.Fatalf("builds = %d, want 1", builds.Load())
	}

	// A second store over the same directory serves from disk without
	// building — the shared-data-dir cluster property.
	var builds2 atomic.Int64
	s2 := open(t, Options{Dir: dir, Build: countingBuild(&builds2)})
	g3, tier := mustResolveTier(t, s2, "cycle:64", 0)
	if tier != TierDisk {
		t.Fatalf("fresh store resolve tier = %v, want disk", tier)
	}
	if builds2.Load() != 0 {
		t.Fatalf("fresh store built %d graphs, want 0", builds2.Load())
	}
	if g3.N() != g1.N() || g3.M() != g1.M() || g3.Name() != g1.Name() {
		t.Fatalf("disk graph mismatch: %s vs %s", g3, g1)
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.Builds != 0 {
		t.Fatalf("stats = %+v, want 1 disk hit, 0 builds", st)
	}
	s2.Release(g3)
}

func TestSingleflight(t *testing.T) {
	var builds atomic.Int64
	s := open(t, Options{Build: countingBuild(&builds)})

	const K = 32
	var wg sync.WaitGroup
	graphs := make([]*graph.Graph, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, err := s.Resolve("regular:512,5", 7)
			if err != nil {
				t.Error(err)
				return
			}
			graphs[i] = g
		}(i)
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("%d concurrent resolves ran %d builds, want exactly 1", K, builds.Load())
	}
	for i := 1; i < K; i++ {
		if graphs[i] != graphs[0] {
			t.Fatal("concurrent resolvers did not share one graph instance")
		}
	}
	for _, g := range graphs {
		s.Release(g)
	}
}

// TestConcurrentWriters hammers two stores sharing a directory from
// many goroutines; under -race this checks the atomic temp+rename
// write convention and the registry locking.
func TestConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	a := open(t, Options{Dir: dir})
	b := open(t, Options{Dir: dir})

	specs := []string{"cycle:48", "grid:2,7", "star:33", "regular:128,4"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		for _, s := range []*Store{a, b} {
			wg.Add(1)
			go func(s *Store, w int) {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					spec := specs[(w+i)%len(specs)]
					g, err := s.Resolve(spec, uint64(i%2))
					if err != nil {
						t.Errorf("resolve %s: %v", spec, err)
						return
					}
					if g.N() == 0 {
						t.Errorf("resolve %s: empty graph", spec)
					}
					s.Release(g)
				}
			}(s, w)
		}
	}
	wg.Wait()
	// Both stores together must have built each (spec, seed) at most
	// once per process (singleflight) — and disk sharing usually makes
	// it once overall per fingerprint for whoever lost the race.
	sa, sb := a.Stats(), b.Stats()
	if sa.Builds > int64(len(specs)*2) || sb.Builds > int64(len(specs)*2) {
		t.Fatalf("too many builds: a=%d b=%d", sa.Builds, sb.Builds)
	}
}

func TestCorruptionTolerance(t *testing.T) {
	corruptions := map[string]func(path string) error{
		"truncated": func(path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, data[:len(data)/2], 0o644)
		},
		"bad magic": func(path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			copy(data[0:4], "NOPE")
			return os.WriteFile(path, data, 0o644)
		},
		"checksum mismatch": func(path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			data[len(data)-1] ^= 0xFF
			return os.WriteFile(path, data, 0o644)
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			var builds atomic.Int64
			dir := t.TempDir()
			s := open(t, Options{Dir: dir, Build: countingBuild(&builds)})
			g, _ := mustResolveTier(t, s, "grid:2,6", 0)
			s.Release(g)

			path := s.path(Fingerprint("grid:2,6", 0))
			if err := corrupt(path); err != nil {
				t.Fatal(err)
			}
			// A fresh store must detect the damage, rebuild, and remove
			// the bad file — never crash, never serve garbage.
			var rebuilds atomic.Int64
			s2 := open(t, Options{Dir: dir, Build: countingBuild(&rebuilds)})
			g2, tier := mustResolveTier(t, s2, "grid:2,6", 0)
			if tier != TierBuild || rebuilds.Load() != 1 {
				t.Fatalf("corrupt artifact served from tier %v (%d rebuilds), want a rebuild", tier, rebuilds.Load())
			}
			if g2.N() != g.N() || g2.M() != g.M() {
				t.Fatalf("rebuilt graph mismatch: %s vs %s", g2, g)
			}
			s2.Release(g2)
			// The rebuild rewrote a good artifact; the next fresh store
			// loads it from disk.
			s3 := open(t, Options{Dir: dir})
			g3, tier := mustResolveTier(t, s3, "grid:2,6", 0)
			if tier != TierDisk {
				t.Fatalf("post-rebuild resolve tier = %v, want disk", tier)
			}
			s3.Release(g3)
		})
	}
}

// TestMmapReadFallbackEquality pins that the mmap path and the
// plain-read path decode byte-identical graphs.
func TestMmapReadFallbackEquality(t *testing.T) {
	dir := t.TempDir()
	seedStore := open(t, Options{Dir: dir})
	g0, _ := mustResolveTier(t, seedStore, "powerlaw:400,2.5", 3)
	seedStore.Release(g0)

	mm := open(t, Options{Dir: dir})
	rd := open(t, Options{Dir: dir, DisableMmap: true})
	ga, tierA := mustResolveTier(t, mm, "powerlaw:400,2.5", 3)
	gb, tierB := mustResolveTier(t, rd, "powerlaw:400,2.5", 3)
	if tierA != TierDisk || tierB != TierDisk {
		t.Fatalf("tiers = %v/%v, want disk/disk", tierA, tierB)
	}
	if ga.Name() != gb.Name() || ga.N() != gb.N() || ga.M() != gb.M() {
		t.Fatalf("graph headers differ: %s vs %s", ga, gb)
	}
	ao, bo := ga.Offsets(), gb.Offsets()
	for i := range ao {
		if ao[i] != bo[i] {
			t.Fatalf("offsets[%d]: %d != %d", i, ao[i], bo[i])
		}
	}
	aa, ba := ga.Adj(), gb.Adj()
	for i := range aa {
		if aa[i] != ba[i] {
			t.Fatalf("adj[%d]: %d != %d", i, aa[i], ba[i])
		}
	}
	if mm.Stats().MmapBytes == 0 {
		t.Fatal("mmap store reports zero mapped bytes")
	}
	if rd.Stats().MmapBytes != 0 {
		t.Fatal("read-fallback store reports mapped bytes")
	}
	mm.Release(ga)
	rd.Release(gb)
}

func TestGCEvictionOrder(t *testing.T) {
	dir := t.TempDir()
	s := open(t, Options{Dir: dir})

	specs := []string{"cycle:32", "cycle:48", "cycle:64"}
	var sizes []int64
	for i, spec := range specs {
		g, _ := mustResolveTier(t, s, spec, 0)
		s.Release(g)
		fp := Fingerprint(spec, 0)
		fi, err := os.Stat(s.path(fp))
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, fi.Size())
		// Stamp distinct mtimes so eviction order is age, oldest first.
		when := time.Now().Add(time.Duration(i-10) * time.Hour)
		if err := os.Chtimes(s.path(fp), when, when); err != nil {
			t.Fatal(err)
		}
	}
	// Re-scan so the accounting sees the stamped times.
	s = open(t, Options{Dir: dir})
	total := sizes[0] + sizes[1] + sizes[2]

	// Cap to fit only the newest two: the oldest (cycle:32) must go.
	s.SetLimits(store.Limits{MaxBytes: total - sizes[0]})
	removed, freed := s.GC(time.Now())
	if removed != 1 || freed != sizes[0] {
		t.Fatalf("GC removed %d (%d bytes), want 1 (%d bytes)", removed, freed, sizes[0])
	}
	if _, err := os.Stat(s.path(Fingerprint("cycle:32", 0))); !os.IsNotExist(err) {
		t.Fatal("oldest artifact not evicted")
	}
	for _, spec := range specs[1:] {
		if _, err := os.Stat(s.path(Fingerprint(spec, 0))); err != nil {
			t.Fatalf("newer artifact %s evicted: %v", spec, err)
		}
	}

	// Age eviction takes the next oldest regardless of the byte budget.
	s.SetLimits(store.Limits{MaxAge: 8*time.Hour + 30*time.Minute})
	removed, _ = s.GC(time.Now())
	if removed != 1 {
		t.Fatalf("age GC removed %d, want 1", removed)
	}
	if _, err := os.Stat(s.path(Fingerprint("cycle:48", 0))); !os.IsNotExist(err) {
		t.Fatal("aged artifact not evicted")
	}
	if s.Stats().Evicted != 2 {
		t.Fatalf("evicted counter = %d, want 2", s.Stats().Evicted)
	}
}

// TestGCKeepsReferencedMapping pins the failure model for eviction
// under load: a mapped, referenced graph keeps working after its file
// is GC'd, and the mapping is released once the references drain.
func TestGCKeepsReferencedMapping(t *testing.T) {
	dir := t.TempDir()
	seed := open(t, Options{Dir: dir})
	g0, _ := mustResolveTier(t, seed, "cycle:100", 0)
	seed.Release(g0)

	s := open(t, Options{Dir: dir})
	g, tier := mustResolveTier(t, s, "cycle:100", 0)
	if tier != TierDisk {
		t.Fatalf("tier = %v, want disk", tier)
	}
	s.SetLimits(store.Limits{MaxBytes: 1})
	if removed, _ := s.GC(time.Now()); removed != 1 {
		t.Fatal("artifact not evicted")
	}
	// The graph must remain fully readable post-unlink.
	deg := 0
	for v := int32(0); v < int32(g.N()); v++ {
		deg += len(g.Neighbors(v))
	}
	if deg != 2*g.M() {
		t.Fatalf("degree sum %d, want %d", deg, 2*g.M())
	}
	if s.Stats().MmapBytes == 0 {
		t.Fatal("mapping released while still referenced")
	}
	s.Release(g)
	if s.Stats().MmapBytes != 0 {
		t.Fatal("mapping not released after last reference")
	}
	// The next resolve rebuilds (file gone, entry dropped).
	g2, tier := mustResolveTier(t, s, "cycle:100", 0)
	if tier != TierBuild {
		t.Fatalf("post-eviction tier = %v, want build", tier)
	}
	s.Release(g2)
}

func TestVerifyArtifact(t *testing.T) {
	dir := t.TempDir()
	s := open(t, Options{Dir: dir})
	if _, err := s.VerifyArtifact("cycle:24", 0); err == nil {
		t.Fatal("verify of a missing artifact succeeded")
	}
	g, _ := mustResolveTier(t, s, "cycle:24", 0)
	s.Release(g)
	d1, err := s.VerifyArtifact("cycle:24", 0)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s.VerifyArtifact("cycle:24", 0)
	if err != nil || d1 != d2 {
		t.Fatalf("digest unstable: %s vs %s (%v)", d1, d2, err)
	}
	// Corrupt and re-verify: the digest check must fail loudly.
	path := s.path(Fingerprint("cycle:24", 0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.VerifyArtifact("cycle:24", 0); err == nil {
		t.Fatal("verify of a corrupt artifact succeeded")
	}
}

func TestOpenScanTolerance(t *testing.T) {
	dir := t.TempDir()
	seed := open(t, Options{Dir: dir})
	g, _ := mustResolveTier(t, seed, "cycle:40", 0)
	seed.Release(g)
	// Plant junk: a bad filename in a shard, a stray tmp file.
	fp := Fingerprint("cycle:40", 0)
	if err := os.WriteFile(filepath.Join(dir, fp[:2], "junk.g"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "tmp", "crashed-write.tmp"), []byte("y"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := open(t, Options{Dir: dir})
	if s.Skipped() == 0 {
		t.Fatal("junk file not counted as skipped")
	}
	if s.Stats().DiskFiles != 1 {
		t.Fatalf("disk files = %d, want 1", s.Stats().DiskFiles)
	}
	if _, err := os.Stat(filepath.Join(dir, "tmp", "crashed-write.tmp")); !os.IsNotExist(err) {
		t.Fatal("stale temp file not cleared")
	}
	g2, tier := mustResolveTier(t, s, "cycle:40", 0)
	if tier != TierDisk {
		t.Fatalf("tier = %v, want disk", tier)
	}
	s.Release(g2)
}
