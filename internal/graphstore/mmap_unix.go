//go:build unix

package graphstore

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mmapFile maps path read-only. The mapping is MAP_SHARED, so every
// process mapping the same artifact shares one set of physical pages —
// the point of the artifact store on a multi-node data directory. The
// mapping stays valid after the file is unlinked (GC relies on this),
// and must be released with munmapFile.
func mmapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size <= 0 || size > math.MaxInt32*4 {
		return nil, fmt.Errorf("graphstore: unmappable artifact size %d", size)
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping returned by mmapFile.
func munmapFile(b []byte) {
	_ = syscall.Munmap(b)
}
