package graphstore

import (
	"context"

	"repro/internal/cli"
	"repro/internal/graph"
)

// Resolver is the narrow interface specs use to obtain graphs: the
// engine injects its store-backed resolver into every job context, and
// code running outside an engine falls back to building directly.
type Resolver interface {
	// Resolve returns the graph for a cli spec and seed. Successful
	// resolves must be paired with Release.
	Resolve(spec string, seed uint64) (*graph.Graph, error)
	// Release returns the reference taken by Resolve.
	Release(g *graph.Graph)
}

// Store implements Resolver.
var _ Resolver = (*Store)(nil)

type ctxKey struct{}

// WithResolver attaches r to ctx for FromContext to recover.
func WithResolver(ctx context.Context, r Resolver) context.Context {
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext returns the resolver attached to ctx, or a direct
// builder (cli.ParseGraph, no caching, no-op Release) when none is —
// so spec code resolves graphs uniformly whether or not an engine is
// in the path.
func FromContext(ctx context.Context) Resolver {
	if r, ok := ctx.Value(ctxKey{}).(Resolver); ok && r != nil {
		return r
	}
	return directBuilder{}
}

// directBuilder is the storeless fallback resolver.
type directBuilder struct{}

func (directBuilder) Resolve(spec string, seed uint64) (*graph.Graph, error) {
	return cli.ParseGraph(spec, seed)
}

func (directBuilder) Release(*graph.Graph) {}
