//go:build !unix

package graphstore

import "errors"

// mmapFile is unavailable off unix; the store falls back to plain
// reads, which load byte-identical graphs without page sharing.
func mmapFile(path string) ([]byte, error) {
	return nil, errors.ErrUnsupported
}

func munmapFile(b []byte) {}
