// Package graphstore is the content-addressed graph artifact store: it
// makes built graphs durable artifacts, keyed by the canonical
// fingerprint of (graph spec, graph seed), built exactly once per
// fingerprint per process (singleflight), serialized once per
// fingerprint per data directory (the binary format of
// internal/graph/artifact.go, written with the store's atomic
// temp+rename convention), and loaded back via mmap so the adjacency
// pages are shared copy-on-write across every worker in the process and
// every cobrad node sharing a data directory.
//
// Resolution tiers, cheapest first:
//
//	mem   — the fingerprint is live in the in-process registry
//	disk  — a verified artifact file was mapped (or read) back
//	build — the generator ran; the artifact is written for next time
//
// Corruption never propagates: a truncated, mangled, or
// checksum-mismatched artifact is deleted and the graph rebuilt.
package graphstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/cli"
	"repro/internal/graph"
	"repro/internal/store"
)

// Fingerprint returns the content address of one graph artifact:
// SHA-256 over the "graph" kind tag and the canonical JSON encoding of
// the spec and seed — the same fingerprint discipline as
// process.Fingerprint and engine.Fingerprint.
func Fingerprint(spec string, seed uint64) string {
	payload, err := json.Marshal(struct {
		Graph string `json:"graph"`
		Seed  uint64 `json:"seed"`
	}{spec, seed})
	if err != nil {
		panic(fmt.Sprintf("graphstore: fingerprint marshal: %v", err))
	}
	h := sha256.New()
	h.Write([]byte("graph"))
	h.Write([]byte{0})
	h.Write(payload)
	return hex.EncodeToString(h.Sum(nil))
}

// Tier reports where a resolve was served from.
type Tier int

const (
	// TierBuild means the generator ran.
	TierBuild Tier = iota
	// TierMem means the graph was already live in the process registry.
	TierMem
	// TierDisk means a stored artifact was loaded (mmap or plain read).
	TierDisk
)

// String returns the metric label for the tier.
func (t Tier) String() string {
	switch t {
	case TierMem:
		return "mem"
	case TierDisk:
		return "disk"
	default:
		return "build"
	}
}

// Options configures a Store. The zero value is a memory-only store
// building through cli.ParseGraph.
type Options struct {
	// Dir is the artifact directory (conventionally <data-dir>/graphs).
	// Empty selects a memory-only store: no artifacts are written or
	// read, only the in-process registry dedups builds.
	Dir string
	// Limits is the disk GC policy, reusing the result store's type so
	// cobrad configures both stores with one vocabulary.
	Limits store.Limits
	// DisableMmap forces the plain-read loading path. Artifacts load
	// byte-identically either way; mmap is only the sharing/latency
	// optimization.
	DisableMmap bool
	// Build generates a graph on a store miss; nil selects
	// cli.ParseGraph. Tests inject counting builders here.
	Build func(spec string, seed uint64) (*graph.Graph, error)
}

// entry is one live graph in the in-process registry.
type entry struct {
	fp     string
	g      *graph.Graph
	mapped []byte // non-nil when g aliases an mmap'd artifact
	refs   int
	// dropped marks an entry GC removed from the registry while still
	// referenced; the final Release unmaps it.
	dropped bool
}

// call is one in-flight build/load, awaited by concurrent resolvers of
// the same fingerprint.
type call struct {
	done chan struct{}
	err  error
}

// fileInfo is the GC accounting for one artifact file.
type fileInfo struct {
	size    int64
	savedAt time.Time
}

// Store is the graph artifact store. All methods are safe for
// concurrent use, including by multiple Store instances sharing a
// directory (writes are atomic renames; loads verify checksums).
type Store struct {
	dir         string
	disableMmap bool
	build       func(spec string, seed uint64) (*graph.Graph, error)

	mu       sync.Mutex
	limits   store.Limits
	mem      map[string]*entry
	byGraph  map[*graph.Graph]*entry
	inflight map[string]*call
	files    map[string]fileInfo
	skipped  int

	builds, memHits, diskHits, evicted int64
	mmapBytes                          int64
}

// Stats is a snapshot of the store's counters and footprint, the source
// of the graphstore_* metrics.
type Stats struct {
	Builds     int64 `json:"builds"`
	MemHits    int64 `json:"mem_hits"`
	DiskHits   int64 `json:"disk_hits"`
	Evicted    int64 `json:"evicted"`
	MmapBytes  int64 `json:"mmap_bytes"`
	MemEntries int   `json:"mem_entries"`
	DiskFiles  int   `json:"disk_files"`
	DiskBytes  int64 `json:"disk_bytes"`
}

// Open creates (if needed) and scans a graph store. The scan is
// corruption-tolerant: it only inventories plausibly named artifact
// files for GC accounting — content is verified at load time, where a
// bad file costs a rebuild, never a crash. Stale temp files from
// crashed writers are removed.
func Open(opts Options) (*Store, error) {
	s := &Store{
		dir:         opts.Dir,
		disableMmap: opts.DisableMmap,
		build:       opts.Build,
		limits:      opts.Limits,
		mem:         make(map[string]*entry),
		byGraph:     make(map[*graph.Graph]*entry),
		inflight:    make(map[string]*call),
		files:       make(map[string]fileInfo),
	}
	if s.build == nil {
		s.build = cli.ParseGraph
	}
	if s.dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(s.tmpDir(), 0o755); err != nil {
		return nil, fmt.Errorf("graphstore: open %s: %w", s.dir, err)
	}
	// Clear the staging area: anything left is a crashed write that
	// never reached its rename, so it holds no committed data.
	if leftovers, err := os.ReadDir(s.tmpDir()); err == nil {
		for _, f := range leftovers {
			_ = os.Remove(filepath.Join(s.tmpDir(), f.Name()))
		}
	}
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("graphstore: scan %s: %w", s.dir, err)
	}
	for _, shard := range shards {
		if !shard.IsDir() || len(shard.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, shard.Name()))
		if err != nil {
			s.skipped++
			continue
		}
		for _, f := range files {
			fp, ok := fpFromFilename(f.Name())
			if !ok || fp[:2] != shard.Name() {
				s.skipped++
				continue
			}
			info, err := f.Info()
			if err != nil {
				s.skipped++
				continue
			}
			s.files[fp] = fileInfo{size: info.Size(), savedAt: info.ModTime()}
		}
	}
	return s, nil
}

// Dir returns the artifact directory ("" for memory-only stores).
func (s *Store) Dir() string { return s.dir }

func (s *Store) tmpDir() string { return filepath.Join(s.dir, "tmp") }

func (s *Store) path(fp string) string {
	return filepath.Join(s.dir, fp[:2], fp+".g")
}

// fpFromFilename recovers the fingerprint from an artifact filename.
func fpFromFilename(name string) (string, bool) {
	const suffix = ".g"
	if len(name) != 64+len(suffix) || name[64:] != suffix {
		return "", false
	}
	fp := name[:64]
	if _, err := hex.DecodeString(fp); err != nil {
		return "", false
	}
	return fp, true
}

// Resolve returns the graph for (spec, seed), building it at most once
// per fingerprint across all concurrent callers. The caller must pair
// every successful Resolve with a Release.
func (s *Store) Resolve(spec string, seed uint64) (*graph.Graph, error) {
	g, _, err := s.ResolveTier(spec, seed)
	return g, err
}

// ResolveTier is Resolve reporting which tier served the graph.
func (s *Store) ResolveTier(spec string, seed uint64) (*graph.Graph, Tier, error) {
	fp := Fingerprint(spec, seed)
	for {
		s.mu.Lock()
		if e, ok := s.mem[fp]; ok {
			e.refs++
			s.memHits++
			s.mu.Unlock()
			return e.g, TierMem, nil
		}
		if c, ok := s.inflight[fp]; ok {
			// Another resolver is building or loading this fingerprint:
			// wait for it, then take the registry path (counted as a mem
			// hit — the wait bought exactly the shared in-process graph).
			s.mu.Unlock()
			<-c.done
			if c.err != nil {
				return nil, TierBuild, c.err
			}
			continue
		}
		c := &call{done: make(chan struct{})}
		s.inflight[fp] = c
		s.mu.Unlock()

		g, tier, err := s.populate(fp, spec, seed)
		c.err = err
		s.mu.Lock()
		delete(s.inflight, fp)
		s.mu.Unlock()
		close(c.done)
		return g, tier, err
	}
}

// populate loads fp from disk or builds it, installs the entry with the
// caller's reference, and returns the serving tier. Runs outside s.mu
// (the inflight call excludes duplicate work on fp).
func (s *Store) populate(fp, spec string, seed uint64) (*graph.Graph, Tier, error) {
	if s.dir != "" {
		if g, mapped, ok := s.loadDisk(fp); ok {
			s.install(fp, g, mapped, TierDisk)
			return g, TierDisk, nil
		}
	}
	g, err := s.build(spec, seed)
	if err != nil {
		return nil, TierBuild, err
	}
	if s.dir != "" {
		// Best-effort: a failed artifact write (disk full, permissions)
		// costs the next cold resolve a rebuild, nothing else.
		_ = s.writeArtifact(fp, g)
	}
	s.install(fp, g, nil, TierBuild)
	return g, TierBuild, nil
}

// loadDisk maps (or reads) and decodes one artifact. Any failure —
// missing file, mangled header, checksum mismatch, structural damage —
// removes the file and reports a miss, so the caller rebuilds.
func (s *Store) loadDisk(fp string) (*graph.Graph, []byte, bool) {
	path := s.path(fp)
	var data, mapped []byte
	if !s.disableMmap {
		if m, err := mmapFile(path); err == nil {
			mapped = m
			data = m
		}
	}
	if data == nil {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, false
		}
		data = b
	}
	g, err := decodeVerified(data)
	if err != nil {
		if mapped != nil {
			munmapFile(mapped)
		}
		s.dropFile(fp)
		return nil, nil, false
	}
	return g, mapped, true
}

// decodeVerified is the checksum-then-decode load path.
func decodeVerified(data []byte) (*graph.Graph, error) {
	if err := graph.VerifyBinary(data); err != nil {
		return nil, err
	}
	return graph.DecodeBinary(data)
}

// dropFile removes a bad or evicted artifact file and its accounting.
func (s *Store) dropFile(fp string) {
	_ = os.Remove(s.path(fp))
	s.mu.Lock()
	delete(s.files, fp)
	s.mu.Unlock()
}

// writeArtifact serializes g and commits it with the temp+rename
// convention: concurrent writers of the same fingerprint each rename a
// complete, byte-identical file into place, so readers never observe a
// partial artifact.
func (s *Store) writeArtifact(fp string, g *graph.Graph) error {
	data := graph.EncodeBinary(g)
	tmp, err := os.CreateTemp(s.tmpDir(), fp[:8]+"-*.tmp")
	if err != nil {
		return fmt.Errorf("graphstore: stage %s: %w", fp[:12], err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("graphstore: write %s: %w", fp[:12], err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("graphstore: close %s: %w", fp[:12], err)
	}
	if err := os.MkdirAll(filepath.Dir(s.path(fp)), 0o755); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("graphstore: shard %s: %w", fp[:12], err)
	}
	if err := os.Rename(tmpName, s.path(fp)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("graphstore: commit %s: %w", fp[:12], err)
	}
	s.mu.Lock()
	s.files[fp] = fileInfo{size: int64(len(data)), savedAt: time.Now()}
	s.mu.Unlock()
	return nil
}

// install registers a freshly served graph with one reference (the
// resolving caller's) and counts the serving tier.
func (s *Store) install(fp string, g *graph.Graph, mapped []byte, tier Tier) {
	e := &entry{fp: fp, g: g, mapped: mapped, refs: 1}
	s.mu.Lock()
	s.mem[fp] = e
	s.byGraph[g] = e
	if mapped != nil {
		s.mmapBytes += int64(len(mapped))
	}
	switch tier {
	case TierDisk:
		s.diskHits++
	case TierBuild:
		s.builds++
	}
	s.mu.Unlock()
}

// Release returns one reference taken by Resolve. Graphs stay resident
// after their last reference (the warm tier); GC reclaims evicted
// entries once their references drain. Releasing a graph the store does
// not track is a no-op, so callers can release unconditionally.
func (s *Store) Release(g *graph.Graph) {
	if g == nil {
		return
	}
	s.mu.Lock()
	e, ok := s.byGraph[g]
	if !ok {
		s.mu.Unlock()
		return
	}
	e.refs--
	var unmap []byte
	if e.refs <= 0 && e.dropped {
		delete(s.byGraph, g)
		if e.mapped != nil {
			unmap = e.mapped
			s.mmapBytes -= int64(len(e.mapped))
		}
	}
	s.mu.Unlock()
	if unmap != nil {
		munmapFile(unmap)
	}
}

// SetLimits replaces the GC policy.
func (s *Store) SetLimits(l store.Limits) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.limits = l
}

// Limits returns the installed GC policy.
func (s *Store) Limits() store.Limits {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.limits
}

// GC applies the installed limits to the artifact files as of now,
// mirroring the result store's policy: artifacts older than MaxAge are
// evicted first, then — if the survivors still exceed MaxBytes — the
// oldest survivors until the store fits (fingerprint as the
// deterministic tie-break). Evicting a fingerprint also drops its
// registry entry: unreferenced graphs are unmapped immediately;
// referenced ones keep serving (an unlinked mapping stays valid) and
// unmap when their references drain. Memory-only stores have no files
// and GC is a no-op.
func (s *Store) GC(now time.Time) (removed int, freed int64) {
	s.mu.Lock()
	limits := s.limits
	if s.dir == "" || (limits.MaxBytes <= 0 && limits.MaxAge <= 0) {
		s.mu.Unlock()
		return 0, 0
	}
	type victim struct {
		fp string
		fileInfo
	}
	live := make([]victim, 0, len(s.files))
	var victims []victim
	var liveBytes int64
	for fp, fi := range s.files {
		if limits.MaxAge > 0 && now.Sub(fi.savedAt) > limits.MaxAge {
			victims = append(victims, victim{fp, fi})
			continue
		}
		live = append(live, victim{fp, fi})
		liveBytes += fi.size
	}
	if limits.MaxBytes > 0 && liveBytes > limits.MaxBytes {
		sort.Slice(live, func(a, b int) bool {
			if !live[a].savedAt.Equal(live[b].savedAt) {
				return live[a].savedAt.Before(live[b].savedAt)
			}
			return live[a].fp < live[b].fp
		})
		for _, v := range live {
			if liveBytes <= limits.MaxBytes {
				break
			}
			victims = append(victims, v)
			liveBytes -= v.size
		}
	}
	s.mu.Unlock()

	for _, v := range victims {
		s.dropFile(v.fp)
		var unmap []byte
		s.mu.Lock()
		s.evicted++
		if e, ok := s.mem[v.fp]; ok {
			delete(s.mem, v.fp)
			if e.refs <= 0 {
				delete(s.byGraph, e.g)
				if e.mapped != nil {
					unmap = e.mapped
					s.mmapBytes -= int64(len(e.mapped))
				}
			} else {
				e.dropped = true
			}
		}
		s.mu.Unlock()
		if unmap != nil {
			munmapFile(unmap)
		}
		removed++
		freed += v.size
	}
	return removed, freed
}

// VerifyArtifact reads the stored artifact for (spec, seed) — never
// building one — and returns its verified payload digest.
func (s *Store) VerifyArtifact(spec string, seed uint64) (string, error) {
	if s.dir == "" {
		return "", fmt.Errorf("graphstore: memory-only store holds no artifacts")
	}
	fp := Fingerprint(spec, seed)
	data, err := os.ReadFile(s.path(fp))
	if err != nil {
		return "", fmt.Errorf("graphstore: no artifact for %q seed %d (fingerprint %.12s): %w", spec, seed, fp, err)
	}
	digest, err := graph.BinaryDigest(data)
	if err != nil {
		return "", fmt.Errorf("graphstore: artifact %.12s: %w", fp, err)
	}
	return digest, nil
}

// Skipped returns how many files the opening scan ignored as
// implausible artifact names.
func (s *Store) Skipped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.skipped
}

// Stats returns a snapshot of the counters and footprint.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Builds:     s.builds,
		MemHits:    s.memHits,
		DiskHits:   s.diskHits,
		Evicted:    s.evicted,
		MmapBytes:  s.mmapBytes,
		MemEntries: len(s.mem),
		DiskFiles:  len(s.files),
	}
	for _, fi := range s.files {
		st.DiskBytes += fi.size
	}
	return st
}
