package repro

import (
	"bytes"
	"strings"
	"testing"
)

// These integration tests exercise the public facade end to end — the
// same calls the examples and downstream users make.

func TestQuickstartFlow(t *testing.T) {
	g := Grid(2, 9) // the paper's [0,8]²
	if g.N() != 81 {
		t.Fatalf("grid n=%d", g.N())
	}
	steps, ok := CoverTime(g, 2, 0, 42)
	if !ok {
		t.Fatal("cover did not finish")
	}
	if steps < 8 {
		t.Fatalf("covered a diameter-16 grid in %d rounds", steps)
	}
}

func TestGraphFamiliesConstruct(t *testing.T) {
	families := map[string]*Graph{
		"grid":      Grid(2, 5),
		"torus":     Torus(2, 5),
		"cycle":     Cycle(10),
		"path":      Path(10),
		"complete":  Complete(6),
		"star":      Star(8),
		"wheel":     Wheel(8),
		"lollipop":  Lollipop(5, 5),
		"barbell":   Barbell(4, 2),
		"kary":      KAryTree(2, 3),
		"hypercube": Hypercube(4),
		"margulis":  Margulis(5),
		"circulant": CirculantRegular(12, []int{1, 2}),
	}
	for name, g := range families {
		if g.N() == 0 {
			t.Fatalf("%s: empty graph", name)
		}
		if !IsConnected(g) {
			t.Fatalf("%s: disconnected", name)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRandomFamiliesConstruct(t *testing.T) {
	rr, err := RandomRegular(64, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if reg, d := rr.IsRegular(); !reg || d != 4 {
		t.Fatal("not 4-regular")
	}
	if g := ErdosRenyi(100, 0.08, true, 2); !IsConnected(g) {
		t.Fatal("ER not connected")
	}
	if g := PowerLaw(200, 2.5, 2, 20, 3); !IsConnected(g) {
		t.Fatal("power law not connected")
	}
	if g := RandomGeometric(200, 0.15, true, 4); !IsConnected(g) {
		t.Fatal("rgg not connected")
	}
}

func TestCobraWalkAPI(t *testing.T) {
	g := Cycle(32)
	w := NewCobraWalk(g, CobraConfig{K: 2}, NewRand(7))
	w.Reset(0)
	w.Step()
	if w.Steps() != 1 {
		t.Fatal("step count wrong")
	}
	if w.ActiveCount() < 1 || w.ActiveCount() > 2 {
		t.Fatalf("active count %d after one round", w.ActiveCount())
	}
	steps, ok := w.RunUntilCovered()
	if !ok || steps < 16 {
		t.Fatalf("cycle cover steps=%d ok=%v", steps, ok)
	}
}

func TestHittingAndMeanCover(t *testing.T) {
	g := Path(20)
	hit, ok := HittingTime(g, 2, 0, 19, 5)
	if !ok || hit < 19 {
		t.Fatalf("hit=%d ok=%v", hit, ok)
	}
	sample, err := MeanCoverTime(g, 2, 0, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(sample) != 10 {
		t.Fatal("trial count wrong")
	}
}

func TestWaltAPI(t *testing.T) {
	g := Torus(2, 5)
	p := NewWaltAtVertex(g, 6, 0, WaltConfig{Lazy: true}, NewRand(3))
	steps, ok := p.CoverTime()
	if !ok || steps < 1 {
		t.Fatalf("walt cover steps=%d ok=%v", steps, ok)
	}
	p2 := NewWalt(g, []int32{0, 1, 2}, WaltConfig{}, NewRand(4))
	if p2.Pebbles() != 3 {
		t.Fatal("pebble count wrong")
	}
}

func TestJointWalkAndTensorAPI(t *testing.T) {
	g := Cycle(8)
	j := NewJointWalk(g, 0, 4, true, NewRand(5))
	for i := 0; i < 50; i++ {
		j.Step()
	}
	dg, err := BuildTensorDigraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if !dg.IsEulerian() {
		t.Fatal("tensor digraph not Eulerian")
	}
}

func TestDriftChainAPI(t *testing.T) {
	c := NewDriftChain([]int{10, 10}, NewRand(6))
	steps, ok := c.TimeToEmpty(10000000)
	if !ok || steps < 20 {
		t.Fatalf("drift chain empty steps=%d ok=%v", steps, ok)
	}
}

func TestBaselineWalksAPI(t *testing.T) {
	g := Complete(16)
	s := NewSimpleWalk(g, 0, NewRand(7))
	if steps, ok := s.CoverTime(100000); !ok || steps < 15 {
		t.Fatalf("simple cover steps=%d ok=%v", steps, ok)
	}
	l := NewLazyWalk(g, 0, NewRand(8))
	if steps, ok := l.HittingTime(5, 100000); !ok || steps < 1 {
		t.Fatalf("lazy hit steps=%d ok=%v", steps, ok)
	}
	p := NewParallelWalks(g, 4, 0, NewRand(9))
	if steps, ok := p.CoverTime(100000); !ok || steps < 1 {
		t.Fatalf("parallel cover steps=%d ok=%v", steps, ok)
	}
}

func TestBiasedWalkAPI(t *testing.T) {
	g := Cycle(24)
	ctrl := NewGreedyController(g, 12)
	b := NewEpsilonBiasedWalk(g, 0.5, ctrl, 0, NewRand(10))
	if steps, ok := b.HittingTime(12, 1000000); !ok || steps < 12 {
		t.Fatalf("biased hit steps=%d ok=%v", steps, ok)
	}
	ib := NewInverseDegreeBiasedWalk(g, 12, ctrl, 0, NewRand(11))
	if steps, ok := ib.HittingTime(12, 10000000); !ok || steps < 12 {
		t.Fatalf("inverse-degree hit steps=%d ok=%v", steps, ok)
	}
	bound := InverseDegreeStationaryBound(g, 0)
	if bound <= 0 || bound >= 1 {
		t.Fatalf("stationary bound %v out of range", bound)
	}
	if eb := EpsilonBiasBound(g, []int32{0}, 0.3); eb <= 0 || eb >= 1 {
		t.Fatalf("epsilon bound %v out of range", eb)
	}
	chain := InverseDegreeMetropolis(g, 0)
	if !chain.Validate(1e-9) {
		t.Fatal("metropolis chain invalid")
	}
}

func TestGossipAPI(t *testing.T) {
	g := Complete(32)
	p := NewGossip(g, PushPull, 0, NewRand(12))
	rounds, ok := p.CompletionTime(10000)
	if !ok || rounds < 3 {
		t.Fatalf("gossip rounds=%d ok=%v", rounds, ok)
	}
	if Push.String() != "push" {
		t.Fatal("gossip mode naming broken")
	}
}

func TestSpectralAPI(t *testing.T) {
	g := Hypercube(4)
	res := AnalyzeSpectrum(g)
	exact := ExactConductance(g)
	if res.PhiLow > exact+1e-9 || res.PhiHigh < exact-1e-9 {
		t.Fatalf("conductance bracket [%v, %v] misses exact %v", res.PhiLow, res.PhiHigh, exact)
	}
	if phi := Conductance(g, []int32{0, 1, 2, 3, 4, 5, 6, 7}); phi <= 0 {
		t.Fatalf("subset conductance %v", phi)
	}
	if _, ok := MixingTime(g, 0.25, 100000); !ok {
		t.Fatal("mixing time did not converge")
	}
}

func TestStatsAPI(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if s := Summarize(xs); s.Mean != 2.5 {
		t.Fatal("summary mean wrong")
	}
	if m, hw := MeanCI(xs); m != 2.5 || hw <= 0 {
		t.Fatal("CI wrong")
	}
	fit := FitPowerLaw([]float64{1, 2, 4}, []float64{2, 8, 32})
	if fit.Exponent < 1.9 || fit.Exponent > 2.1 {
		t.Fatalf("power fit exponent %v", fit.Exponent)
	}
}

func TestRunTrialsAPI(t *testing.T) {
	sample, err := RunTrials(16, 3, func(trial int, src *Rand) (float64, error) {
		return float64(src.Intn(100)), nil
	})
	if err != nil || len(sample) != 16 {
		t.Fatalf("RunTrials: %v, len=%d", err, len(sample))
	}
}

func TestGridTrackerAPI(t *testing.T) {
	tr := NewGridTracker(2, 32, []int{0, 0}, []int{10, 10}, NewRand(13))
	steps, ok := tr.RunToTarget(1000000)
	if !ok || steps < 20 {
		t.Fatalf("tracker steps=%d ok=%v", steps, ok)
	}
}

func TestEdgeListRoundTripAPI(t *testing.T) {
	g := Lollipop(4, 3)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatal("round trip changed graph")
	}
	var dot bytes.Buffer
	if err := WriteDOT(&dot, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "--") {
		t.Fatal("DOT output missing edges")
	}
}

func TestGeneralCobraWalkAPI(t *testing.T) {
	g := Cycle(48)
	w := NewGeneralCobraWalk(g, BernoulliBranching(1, 2, 0.5), 0, NewRand(3))
	w.Reset(0)
	steps, ok := w.RunUntilCovered()
	if !ok || steps < 24 {
		t.Fatalf("general walk steps=%d ok=%v", steps, ok)
	}
	if ConstantBranching(3)(0, 0, nil) != 3 {
		t.Fatal("constant branching wrong")
	}
	if DegreeCappedBranching(g, 5)(0, 0, nil) != 2 {
		t.Fatal("degree cap wrong on cycle")
	}
	if PeriodicBranching(4, 2)(0, 1, nil) != 1 {
		t.Fatal("periodic branching wrong")
	}
}

func TestGraphProductsAPI(t *testing.T) {
	p := CartesianProduct(Path(4), Path(4))
	g := Grid(2, 4)
	if p.N() != g.N() || p.M() != g.M() {
		t.Fatal("cartesian product does not match grid")
	}
	tp := TensorProduct(Cycle(5), Cycle(5))
	if tp.N() != 25 {
		t.Fatal("tensor product size wrong")
	}
}

func TestExactHittingAPI(t *testing.T) {
	g := Path(10)
	h := ExactHittingTimes(g, 9, 1e-10, 10000000)
	if h[0] < 80 || h[0] > 82 {
		t.Fatalf("path exact hitting %v, want 81", h[0])
	}
	rt := ExactReturnTime(g, 0, 1e-10, 10000000)
	want := 2 * float64(g.M()) / float64(g.Degree(0))
	if rt < want-1e-3 || rt > want+1e-3 {
		t.Fatalf("return time %v, want %v", rt, want)
	}
}

func TestSISAPI(t *testing.T) {
	g := Complete(30)
	p := NewSIS(g, []int32{0}, SISConfig{K: 2, Beta: 1, Gamma: 1}, NewRand(5))
	outcome, rounds := p.Run()
	if outcome != SISFullExposure {
		t.Fatalf("outcome %v after %d rounds", outcome, rounds)
	}
	surv, err := SISSurvivalProbability(g, 0, SISConfig{K: 2, Beta: 0.9, Gamma: 1, MaxRounds: 100000}, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if surv < 0.5 {
		t.Fatalf("high-beta survival %v too low", surv)
	}
}

func TestExperimentRegistryAPI(t *testing.T) {
	all := Experiments()
	if len(all) != 20 {
		t.Fatalf("expected 20 experiments, got %d", len(all))
	}
	if _, err := RunExperiment("E99", QuickScale, 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunExperimentE13(t *testing.T) {
	res, err := RunExperiment("E13", QuickScale, 99)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "E13" || len(res.Tables) == 0 {
		t.Fatal("experiment result malformed")
	}
}

func TestBFSAndDiameterAPI(t *testing.T) {
	g := Path(10)
	dist := BFS(g, 0)
	if dist[9] != 9 {
		t.Fatal("BFS wrong")
	}
	if Diameter(g) != 9 {
		t.Fatal("diameter wrong")
	}
}

func TestSparklineAPI(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline %q wrong length", s)
	}
	ds := Downsample([]float64{1, 1, 2, 2}, 2)
	if len(ds) != 2 || ds[0] != 1 || ds[1] != 2 {
		t.Fatalf("downsample = %v", ds)
	}
}
