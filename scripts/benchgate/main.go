// Command benchgate compares a fresh benchmark measurement against the
// latest committed BENCH_<date>.json baseline and fails when a gated
// benchmark has regressed beyond the allowed fraction. It is the
// regression half of the perf harness: cmd/benchjson records baselines,
// benchgate holds new code to them.
//
// Run from the repository root (the Makefile and CI use the wrapper):
//
//	./scripts/bench_gate.sh          # measure + compare in one step
//	go run ./scripts/benchgate -fresh fresh.json
//
// The baseline defaults to the newest BENCH_<date>.json in the
// repository root (strictly dated files only; ad-hoc snapshots such as
// BENCH_<date>_pre.json are ignored). Only the benchmarks named by
// -gate fail the run — the remaining shared benchmarks are reported for
// context, because absolute ns/op comparisons across different machines
// are noisy. The gated set is kept to the steady-state step kernel,
// whose cost is dominated by per-round work rather than allocator or
// I/O noise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// result mirrors one cmd/benchjson measurement.
type result struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	Iters   int     `json:"iterations"`
}

// baseline mirrors the cmd/benchjson document.
type baseline struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	Benchtime string   `json:"benchtime"`
	Results   []result `json:"results"`
}

// datedBaseline matches committed baseline files and nothing else:
// BENCH_2026-07-27.json is a baseline, BENCH_2026-07-27_pre.json is an
// ad-hoc snapshot and must not silently become the reference.
var datedBaseline = regexp.MustCompile(`^BENCH_\d{4}-\d{2}-\d{2}\.json$`)

func main() {
	baselinePath := flag.String("baseline", "", "baseline BENCH_<date>.json (default: newest committed one in -root)")
	freshPath := flag.String("fresh", "", "fresh measurement to compare (required; produced by cmd/benchjson)")
	root := flag.String("root", ".", "repository root to scan for baselines")
	gate := flag.String("gate", "CobraStepExpander,GraphResolveWarm", "comma-separated benchmark names that fail the run on regression")
	maxRegress := flag.Float64("max-regress", 0.15, "allowed fractional ns/op regression for gated benchmarks")
	flag.Parse()

	if *freshPath == "" {
		fatal(fmt.Errorf("benchgate: -fresh is required (run cmd/benchjson first, or use scripts/bench_gate.sh)"))
	}
	if *baselinePath == "" {
		p, err := latestBaseline(*root)
		if err != nil {
			fatal(err)
		}
		*baselinePath = p
	}

	base, err := load(*baselinePath)
	if err != nil {
		fatal(err)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("benchgate: baseline %s (%s, benchtime %s) vs fresh (%s, benchtime %s)\n",
		filepath.Base(*baselinePath), base.GoVersion, base.Benchtime, fresh.GoVersion, fresh.Benchtime)

	gated := make(map[string]bool)
	for _, name := range strings.Split(*gate, ",") {
		if name = strings.TrimSpace(name); name != "" {
			gated[name] = true
		}
	}

	baseBy := make(map[string]result, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	failed := 0
	seen := make(map[string]bool)
	for _, fr := range fresh.Results {
		seen[fr.Name] = true
		br, ok := baseBy[fr.Name]
		if !ok || br.NsPerOp <= 0 {
			fmt.Printf("  %-28s %12.0f ns/op  (no baseline)\n", fr.Name, fr.NsPerOp)
			continue
		}
		delta := fr.NsPerOp/br.NsPerOp - 1
		mark := " "
		if gated[fr.Name] {
			mark = "*"
			if delta > *maxRegress {
				mark = "!"
				failed++
			}
		}
		fmt.Printf("%s %-28s %12.0f -> %10.0f ns/op  %+6.1f%%\n", mark, fr.Name, br.NsPerOp, fr.NsPerOp, 100*delta)
	}
	// A gate over a benchmark the fresh run never measured is a harness
	// bug, not a pass: fail loudly instead of green-lighting nothing.
	for name := range gated {
		if !seen[name] {
			fmt.Fprintf(os.Stderr, "benchgate: gated benchmark %s missing from fresh results\n", name)
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — %d gated benchmark(s) regressed more than %.0f%% (or went missing)\n",
			failed, 100**maxRegress)
		os.Exit(1)
	}
	fmt.Printf("benchgate: OK — gated benchmarks within %.0f%% of baseline\n", 100**maxRegress)
}

// latestBaseline returns the newest strictly-dated BENCH_<date>.json in
// root. The date is the filename, so lexicographic order is
// chronological order.
func latestBaseline(root string) (string, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return "", fmt.Errorf("benchgate: scan %s: %w", root, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && datedBaseline.MatchString(e.Name()) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return "", fmt.Errorf("benchgate: no BENCH_<date>.json baseline in %s (run make bench-baseline)", root)
	}
	sort.Strings(names)
	return filepath.Join(root, names[len(names)-1]), nil
}

func load(path string) (baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return baseline{}, fmt.Errorf("benchgate: %w", err)
	}
	var doc baseline
	if err := json.Unmarshal(data, &doc); err != nil {
		return baseline{}, fmt.Errorf("benchgate: parse %s: %w", path, err)
	}
	if len(doc.Results) == 0 {
		return baseline{}, fmt.Errorf("benchgate: %s has no results", path)
	}
	return doc, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
