#!/usr/bin/env bash
# Coverage threshold gate: fails if the total statement coverage in a
# Go cover profile is below the given minimum percentage.
#
#   ./scripts/coverage_gate.sh <profile> <min-percent>
#
# CI runs this over internal/engine + internal/store + internal/graphstore
# + internal/cluster (incl. faulttransport) + internal/retry — the
# durability and exactly-once core this repo cannot afford to regress
# silently.
set -euo pipefail

PROFILE="${1:?usage: coverage_gate.sh <profile> <min-percent>}"
MIN="${2:?usage: coverage_gate.sh <profile> <min-percent>}"

TOTAL="$(go tool cover -func="${PROFILE}" | awk '/^total:/ {gsub(/%/, "", $3); print $3}')"
[ -n "${TOTAL}" ] || { echo "coverage_gate: no total line in ${PROFILE}" >&2; exit 1; }

echo "coverage_gate: total ${TOTAL}% (minimum ${MIN}%)"
awk -v total="${TOTAL}" -v min="${MIN}" 'BEGIN { exit (total + 0 >= min + 0) ? 0 : 1 }' || {
  echo "coverage_gate: FAIL — ${TOTAL}% < ${MIN}%" >&2
  exit 1
}
