// Command docscheck lints the operator docs against the code, so the
// documentation cannot silently rot:
//
//   - every route registered in internal/service (service.Routes) must
//     appear verbatim in docs/API.md;
//   - every error-envelope code (service.ErrorCodes) must appear in
//     docs/API.md;
//   - every registered process (process.Names) must have a row in the
//     README's process table ("| `name` |").
//
// Usage (from the repository root, as scripts/docs_check.sh does):
//
//	go run ./scripts/docscheck [repo-root]
//
// Exit status 0 when the docs are in sync, 1 with one line per missing
// item otherwise.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/process"
	"repro/internal/service"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	api := mustRead(filepath.Join(root, "docs", "API.md"))
	readme := mustRead(filepath.Join(root, "README.md"))

	var failures []string
	for _, route := range service.Routes() {
		if !strings.Contains(api, route) {
			failures = append(failures,
				fmt.Sprintf("docs/API.md: missing registered route %q", route))
		}
	}
	for _, code := range service.ErrorCodes() {
		if !strings.Contains(api, "`"+code+"`") {
			failures = append(failures,
				fmt.Sprintf("docs/API.md: missing error code `%s`", code))
		}
	}
	for _, name := range process.Names() {
		if !strings.Contains(readme, "| `"+name+"`") {
			failures = append(failures,
				fmt.Sprintf("README.md: process table missing a row for `%s`", name))
		}
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "docscheck: "+f)
		}
		fmt.Fprintf(os.Stderr, "docscheck: FAIL (%d problems)\n", len(failures))
		os.Exit(1)
	}
	fmt.Printf("docscheck: OK — %d routes, %d error codes, %d processes documented\n",
		len(service.Routes()), len(service.ErrorCodes()), len(process.Names()))
}

func mustRead(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(1)
	}
	return string(data)
}
