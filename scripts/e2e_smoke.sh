#!/usr/bin/env bash
# End-to-end durability smoke for cobrad, driven through the cobractl
# client so the typed SDK is exercised against a real daemon: start
# cobrad with a temporary persistent data dir, discover the process
# registry, submit a sweep spanning TWO different processes over HTTP,
# stream SSE progress to completion, then restart the daemon on the
# same data dir and assert the resubmitted sweep is served from the
# persistent store (cache hit, identical result, zero trials re-run).
#
# Requires: go, curl, jq. Run from the repository root:
#
#   ./scripts/e2e_smoke.sh
set -euo pipefail

PORT="${COBRAD_PORT:-18080}"
ADDR="127.0.0.1:${PORT}"
BASE="http://${ADDR}"
WORK="$(mktemp -d)"
DATA="${WORK}/data"
COBRAD="${WORK}/cobrad"
COBRACTL="${WORK}/cobractl"
SWEEP_ARGS=(sweep -child process -processes cobra,push -family cycle
            -sizes 8,10,12 -trials 3 -seed 99 -param k=2 -json)

COBRAD_PID=""
cleanup() {
  [ -n "${COBRAD_PID}" ] && kill "${COBRAD_PID}" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "${WORK}"
}
trap cleanup EXIT

fail() { echo "e2e: FAIL: $*" >&2; exit 1; }

ctl() { "${COBRACTL}" -server "${BASE}" "$@"; }

start_daemon() {
  "${COBRAD}" -addr "${ADDR}" -data-dir "${DATA}" -job-ttl 10m \
    -store-max-bytes 104857600 -store-max-age 24h -store-gc-interval 5s \
    >"${WORK}/cobrad.$1.log" 2>&1 &
  COBRAD_PID=$!
  for _ in $(seq 1 100); do
    if curl -sf "${BASE}/healthz" >/dev/null 2>&1; then return 0; fi
    kill -0 "${COBRAD_PID}" 2>/dev/null || { cat "${WORK}/cobrad.$1.log" >&2; fail "daemon died on startup"; }
    sleep 0.1
  done
  fail "daemon did not become healthy"
}

stop_daemon() {
  kill -TERM "${COBRAD_PID}"
  for _ in $(seq 1 100); do
    kill -0 "${COBRAD_PID}" 2>/dev/null || { COBRAD_PID=""; return 0; }
    sleep 0.1
  done
  fail "daemon did not shut down"
}

echo "e2e: building cobrad and cobractl"
go build -o "${COBRAD}" ./cmd/cobrad
go build -o "${COBRACTL}" ./cmd/cobractl

echo "e2e: first daemon run (data dir ${DATA})"
start_daemon first

echo "e2e: discovering the process registry through cobractl"
PROCS="$(ctl processes -json | jq '.processes | length')"
[ "${PROCS}" -ge 8 ] || fail "GET /v1/processes lists ${PROCS} processes, want >= 8"
ctl processes -json | jq -e '.processes[] | select(.name=="cobra") | .params | length > 0' >/dev/null \
  || fail "cobra process missing a parameter schema"
echo "e2e: ${PROCS} processes registered"

echo "e2e: submitting a two-process sweep (cobra + push) through cobractl"
SUBMIT="$(ctl "${SWEEP_ARGS[@]}")"
JOB_ID="$(jq -r '.sweep.id' <<<"${SUBMIT}")"
[ "${JOB_ID}" != "null" ] && [ -n "${JOB_ID}" ] || fail "sweep submission rejected: ${SUBMIT}"
echo "e2e: sweep ${JOB_ID} submitted"

echo "e2e: watching SSE through cobractl until terminal"
ctl watch "${JOB_ID}" 2>"${WORK}/watch.log" || { cat "${WORK}/watch.log" >&2; fail "watch did not end in done"; }
grep -q "state=done" "${WORK}/watch.log" || fail "watch log missing terminal state: $(cat "${WORK}/watch.log")"

CHILDREN="$(curl -sf "${BASE}/v1/sweeps/${JOB_ID}" | jq '.children | length')"
[ "${CHILDREN}" -eq 6 ] || fail "fan-out view has ${CHILDREN} children, want 6 (2 processes x 3 sizes)"

ctl result "${JOB_ID}" -json | jq -S '.result' >"${WORK}/result.first.json"
POINTS="$(jq '.points | length' "${WORK}/result.first.json")"
[ "${POINTS}" -eq 6 ] || fail "result has ${POINTS} points, want 6"
DISTINCT_PROCS="$(jq '[.points[].process] | unique | length' "${WORK}/result.first.json")"
[ "${DISTINCT_PROCS}" -eq 2 ] || fail "result spans ${DISTINCT_PROCS} processes, want 2"

echo "e2e: job listing is deterministic and filterable"
DONE_JOBS="$(ctl ps -status done -json | jq '.jobs | length')"
[ "${DONE_JOBS}" -ge 7 ] || fail "ps -status done lists ${DONE_JOBS} jobs, want >= 7 (sweep + children)"
ctl ps -status done -json | jq -e '[.jobs[].id] as $a | ($a | sort | reverse) == $a' >/dev/null \
  || fail "ps listing is not sorted most-recent-first"

COMPLETED_FIRST="$(curl -sf "${BASE}/metrics" | awk '/^cobrad_jobs_completed_total/ {print $2}')"
echo "e2e: first run completed ${COMPLETED_FIRST} jobs (parent + children)"

echo "e2e: restarting daemon on the same data dir"
stop_daemon
start_daemon second

RESUBMIT="$(ctl "${SWEEP_ARGS[@]}")"
JOB2_ID="$(jq -r '.sweep.id' <<<"${RESUBMIT}")"
CACHE_HIT="$(jq -r '.sweep.cache_hit' <<<"${RESUBMIT}")"
STATE2="$(jq -r '.sweep.state' <<<"${RESUBMIT}")"
[ "${CACHE_HIT}" = "true" ] || fail "restarted daemon did not serve sweep from store: ${RESUBMIT}"
[ "${STATE2}" = "done" ] || fail "restarted sweep state = ${STATE2}, want immediate done"

# Watching an already-terminal job emits the cached terminal status and ends.
ctl watch "${JOB2_ID}" 2>"${WORK}/watch2.log" || fail "post-restart watch failed: $(cat "${WORK}/watch2.log")"
grep -q "state=done" "${WORK}/watch2.log" || fail "post-restart watch missing cached terminal status"

ctl result "${JOB2_ID}" -json | jq -S '.result' >"${WORK}/result.second.json"
cmp -s "${WORK}/result.first.json" "${WORK}/result.second.json" \
  || fail "result changed across restart: $(diff "${WORK}/result.first.json" "${WORK}/result.second.json" | head)"

# Zero trials re-run: the only completed job in the fresh process is the
# cache-served parent itself.
METRICS="$(curl -sf "${BASE}/metrics")"
COMPLETED_SECOND="$(awk '/^cobrad_jobs_completed_total/ {print $2}' <<<"${METRICS}")"
STORE_ENTRIES="$(awk '/^cobrad_store_entries/ {print $2}' <<<"${METRICS}")"
[ "${COMPLETED_SECOND}" -eq 1 ] || fail "restarted daemon completed ${COMPLETED_SECOND} jobs, want 1 (cached parent only)"
[ "${STORE_ENTRIES}" -ge 7 ] || fail "store has ${STORE_ENTRIES} records, want >= 7 (6 points + sweep)"

stop_daemon
echo "e2e: PASS — two-process sweep of ${POINTS} points via cobractl, SSE to completion, survived restart from ${STORE_ENTRIES} store records, byte-identical result with zero trials re-run"
