#!/usr/bin/env bash
# End-to-end cluster + durability smoke for cobrad, driven through the
# cobractl client so the typed SDK is exercised against real daemons:
#
#   1. start a two-node cluster (coordinator + runner) sharing one
#      persistent data dir, and check /v1/nodes discovery;
#   2. submit one 12-point sweep to the coordinator and let both nodes
#      drain it through leased claims;
#   3. SIGKILL the runner mid-sweep: the coordinator reclaims its
#      expired leases and the sweep still completes, with the compute
#      journal showing every stored point computed exactly once,
#      spread across both nodes, with zero duplicates;
#   4. restart from scratch on the same data dir and resubmit the
#      sweep: served from the store as a cache hit, byte-identical
#      result, zero trials re-run;
#   5. network-native cluster with NO shared filesystem: a coordinator
#      and two -cluster-url runners on disjoint temp dirs, joined over
#      loopback HTTP only; one runner is SIGKILLed mid-sweep and the
#      survivors complete all 12 points exactly once (verified through
#      GET /v1/cluster/journal), with the aggregate byte-identical to a
#      clusterless single-node run of the same sweep.
#
# Requires: go, curl, jq, timeout. Run from the repository root:
#
#   ./scripts/e2e_smoke.sh
set -euo pipefail

PORT_A="${COBRAD_PORT:-18080}"
PORT_B=$((PORT_A + 1))
PORT_C=$((PORT_A + 2))
PORT_D=$((PORT_A + 3))
PORT_E=$((PORT_A + 4))
PORT_F=$((PORT_A + 5))
PORT_G=$((PORT_A + 6))
BASE_A="http://127.0.0.1:${PORT_A}"
BASE_B="http://127.0.0.1:${PORT_B}"
BASE_C="http://127.0.0.1:${PORT_C}"
BASE_D="http://127.0.0.1:${PORT_D}"
BASE_G="http://127.0.0.1:${PORT_G}"
WORK="$(mktemp -d)"
DATA="${WORK}/data"
JOURNAL="${DATA}/cluster/journal"
COBRAD="${WORK}/cobrad"
COBRACTL="${WORK}/cobractl"
LEASE_TTL=3s

# 12 points: one process x 12 sizes, each point heavy enough (~0.2-1s)
# that killing the runner lands mid-sweep.
SWEEP_ARGS=(sweep -child process -processes cobra -family cycle
            -sizes 2048,2304,2560,2816,3072,3328,3584,3840,4096,4352,4608,4864
            -trials 20 -seed 99 -param k=2 -json)

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "${WORK}"
}
trap cleanup EXIT

fail() { echo "e2e: FAIL: $*" >&2; exit 1; }

# wait_healthy <name> <port> <pid> — poll /healthz until the daemon
# answers, failing fast if its process dies on startup.
wait_healthy() {
  local name=$1 port=$2 pid=$3
  for _ in $(seq 1 100); do
    if curl -sf "http://127.0.0.1:${port}/healthz" >/dev/null 2>&1; then
      return 0
    fi
    kill -0 "${pid}" 2>/dev/null || { cat "${WORK}/cobrad.${name}.log" >&2; fail "daemon ${name} died on startup"; }
    sleep 0.1
  done
  fail "daemon ${name} did not become healthy"
}

# start_daemon <name> <port> <role> [data-dir] -> sets DAEMON_PID (no
# command substitution: the background pid must land in this shell's
# PIDS so the exit trap can reap it).
start_daemon() {
  local name=$1 port=$2 role=$3 data=${4:-${DATA}}
  "${COBRAD}" -addr "127.0.0.1:${port}" -data-dir "${data}" -workers 2 \
    -cluster "${role}" -node-id "${name}" -lease-ttl "${LEASE_TTL}" \
    -job-ttl 10m >"${WORK}/cobrad.${name}.log" 2>&1 &
  DAEMON_PID=$!
  PIDS+=("${DAEMON_PID}")
  wait_healthy "${name}" "${port}" "${DAEMON_PID}"
}

# start_http_runner <name> <port> <coordinator-url> [data-dir] — a
# runner that joins over the network with -cluster-url: no shared
# filesystem; an optional private data dir holds only its graph cache.
start_http_runner() {
  local name=$1 port=$2 url=$3 data=${4:-}
  local args=(-addr "127.0.0.1:${port}" -workers 2
              -cluster runner -cluster-url "${url}"
              -node-id "${name}" -lease-ttl "${LEASE_TTL}" -job-ttl 10m)
  if [ -n "${data}" ]; then args+=(-data-dir "${data}"); fi
  "${COBRAD}" "${args[@]}" >"${WORK}/cobrad.${name}.log" 2>&1 &
  DAEMON_PID=$!
  PIDS+=("${DAEMON_PID}")
  wait_healthy "${name}" "${port}" "${DAEMON_PID}"
}

stop_daemon() { # graceful
  local pid=$1
  kill -TERM "$pid" 2>/dev/null || true
  for _ in $(seq 1 100); do
    kill -0 "$pid" 2>/dev/null || return 0
    sleep 0.1
  done
  fail "daemon $pid did not shut down"
}

ctl_a() { "${COBRACTL}" -server "${BASE_A}" "$@"; }
ctl_c() { "${COBRACTL}" -server "${BASE_C}" "$@"; }

journal_total() { find "${JOURNAL}" -name '*.json' 2>/dev/null | wc -l; }
journal_cat() { find "${JOURNAL}" -name '*.json' -exec cat {} + 2>/dev/null; }
journal_nodes() { # distinct computing nodes so far
  journal_cat | jq -rs '[.[].node] | unique | length'
}

echo "e2e: building cobrad and cobractl"
go build -o "${COBRAD}" ./cmd/cobrad
go build -o "${COBRACTL}" ./cmd/cobractl

echo "e2e: starting two-node cluster on ${DATA} (coordinator a, runner b)"
start_daemon a "${PORT_A}" coordinator; PID_A="${DAEMON_PID}"
start_daemon b "${PORT_B}" runner; PID_B="${DAEMON_PID}"

echo "e2e: discovery — processes and nodes"
PROCS="$(ctl_a processes -json | jq '.processes | length')"
[ "${PROCS}" -ge 8 ] || fail "GET /v1/processes lists ${PROCS} processes, want >= 8"
NODES="$(ctl_a nodes -json | jq '[.nodes[] | select(.alive)] | length')"
[ "${NODES}" -eq 2 ] || fail "/v1/nodes sees ${NODES} alive members, want 2 (a + b)"
ctl_a nodes -json | jq -e '.cluster and .node == "a" and .role == "coordinator"' >/dev/null \
  || fail "coordinator self-view wrong: $(ctl_a nodes -json)"

echo "e2e: submitting a 12-point sweep to the coordinator"
SUBMIT="$(ctl_a "${SWEEP_ARGS[@]}")"
JOB_ID="$(jq -r '.sweep.id' <<<"${SUBMIT}")"
[ "${JOB_ID}" != "null" ] && [ -n "${JOB_ID}" ] || fail "sweep submission rejected: ${SUBMIT}"
echo "e2e: sweep ${JOB_ID} submitted"

echo "e2e: waiting until both nodes have computed points, then killing the runner"
for i in $(seq 1 300); do
  TOTAL="$(journal_total)"
  DISTINCT="$(journal_nodes)"
  if [ "${TOTAL}" -ge 2 ] && [ "${DISTINCT:-0}" -ge 2 ] && [ "${TOTAL}" -lt 12 ]; then
    break
  fi
  if [ "${TOTAL}" -ge 12 ]; then
    fail "sweep drained before the runner could be killed mid-flight (journal=${TOTAL}, nodes=${DISTINCT:-0}) — slow the points down"
  fi
  if [ "$i" -eq 300 ]; then
    fail "cluster never spread work across both nodes (journal=${TOTAL}, nodes=${DISTINCT:-0}); see ${WORK}/cobrad.b.log"
  fi
  sleep 0.1
done
kill -9 "${PID_B}"
echo "e2e: runner b SIGKILLed with the sweep $(journal_total)/12 computed"

echo "e2e: watching the sweep to completion on the survivor (SSE)"
timeout 180 "${COBRACTL}" -server "${BASE_A}" watch "${JOB_ID}" 2>"${WORK}/watch.log" \
  || { cat "${WORK}/watch.log" >&2; fail "watch did not end in done after the kill"; }
grep -q "state=done" "${WORK}/watch.log" || fail "watch log missing terminal state"

echo "e2e: exactly-once accounting across the kill"
TOTAL="$(journal_total)"
UNIQUE="$(journal_cat | jq -rs '[.[].key] | unique | length')"
DISTINCT="$(journal_nodes)"
[ "${TOTAL}" -eq 12 ] || fail "journal has ${TOTAL} compute records, want exactly 12 (duplicate or lost work)"
[ "${UNIQUE}" -eq 12 ] || fail "journal spans ${UNIQUE} distinct points, want 12 — some point was computed twice"
[ "${DISTINCT}" -eq 2 ] || fail "journal credits ${DISTINCT} nodes, want both a and b"
B_POINTS="$(journal_cat | jq -rs '[.[] | select(.node=="b")] | length')"
echo "e2e: 12 points computed exactly once (runner b contributed ${B_POINTS} before dying)"

ctl_a result "${JOB_ID}" -json | jq -S '.result' >"${WORK}/result.first.json"
POINTS="$(jq '.points | length' "${WORK}/result.first.json")"
[ "${POINTS}" -eq 12 ] || fail "result has ${POINTS} points, want 12"

echo "e2e: dead runner visible in discovery"
sleep 3  # past the 3x-heartbeat liveness window
ctl_a nodes -json | jq -e '.nodes[] | select(.id=="b") | .alive == false' >/dev/null \
  || fail "killed runner still reported alive: $(ctl_a nodes -json)"

echo "e2e: seeding a graph artifact on the coordinator"
ctl_a submit -process cobra -graph regular:1024,5 -graph-seed 42 -trials 2 -seed 5 -param k=2 -watch -json >/dev/null \
  || fail "artifact-seeding job failed"
[ -n "$(find "${DATA}/graphs" -name '*.g' 2>/dev/null)" ] \
  || fail "no graph artifacts persisted under ${DATA}/graphs"
JOURNAL_BASE="$(journal_total)"  # 12 sweep points + the seeding job

echo "e2e: full restart — fresh peer on the same data dir"
stop_daemon "${PID_A}"
start_daemon c "${PORT_C}" peer; PID_C="${DAEMON_PID}"

RESUBMIT="$(ctl_c "${SWEEP_ARGS[@]}")"
CACHE_HIT="$(jq -r '.sweep.cache_hit' <<<"${RESUBMIT}")"
STATE2="$(jq -r '.sweep.state' <<<"${RESUBMIT}")"
JOB2_ID="$(jq -r '.sweep.id' <<<"${RESUBMIT}")"
[ "${CACHE_HIT}" = "true" ] || fail "restarted cluster did not serve the sweep from the store: ${RESUBMIT}"
[ "${STATE2}" = "done" ] || fail "resubmitted sweep state = ${STATE2}, want immediate done"

ctl_c result "${JOB2_ID}" -json | jq -S '.result' >"${WORK}/result.second.json"
cmp -s "${WORK}/result.first.json" "${WORK}/result.second.json" \
  || fail "result changed across restart: $(diff "${WORK}/result.first.json" "${WORK}/result.second.json" | head)"

# Zero trials re-run: nothing was computed after the restart and the
# journal did not grow.
METRICS="$(curl -sf "${BASE_C}/metrics")"
COMPUTED_AFTER="$(awk '/^cobrad_points_computed_total/ {print $2}' <<<"${METRICS}")"
COMPLETED_AFTER="$(awk '/^cobrad_jobs_completed_total/ {print $2}' <<<"${METRICS}")"
[ "${COMPUTED_AFTER}" -eq 0 ] || fail "restarted node computed ${COMPUTED_AFTER} points, want 0"
[ "${COMPLETED_AFTER}" -eq 1 ] || fail "restarted node completed ${COMPLETED_AFTER} jobs, want 1 (the cache-served parent)"
[ "$(journal_total)" -eq "${JOURNAL_BASE}" ] \
  || fail "journal grew to $(journal_total) records after the resubmit, want still ${JOURNAL_BASE}"

echo "e2e: service regressions — schema discovery, two-process sweep, listing determinism"
ctl_c processes -json | jq -e '.processes[] | select(.name=="cobra") | .params | length > 0' >/dev/null \
  || fail "cobra process missing a parameter schema"
SMALL_ARGS=(sweep -child process -processes cobra,push -family cycle
            -sizes 8,10,12 -trials 3 -seed 7 -param k=2 -json)
SUB3="$(ctl_c "${SMALL_ARGS[@]}")"
JOB3="$(jq -r '.sweep.id' <<<"${SUB3}")"
[ "${JOB3}" != "null" ] && [ -n "${JOB3}" ] || fail "two-process sweep rejected: ${SUB3}"
timeout 120 "${COBRACTL}" -server "${BASE_C}" watch "${JOB3}" 2>/dev/null \
  || fail "two-process sweep did not complete"
DISTINCT_PROCS="$(ctl_c result "${JOB3}" -json | jq '[.result.points[].process] | unique | length')"
[ "${DISTINCT_PROCS}" -eq 2 ] || fail "two-process sweep spans ${DISTINCT_PROCS} processes, want 2 (cobra + push)"
DONE_JOBS="$(ctl_c ps -status done -json | jq '.jobs | length')"
[ "${DONE_JOBS}" -ge 8 ] || fail "ps -status done lists ${DONE_JOBS} jobs, want >= 8 (both sweeps + children)"
ctl_c ps -status done -json | jq -e '[.jobs[].id] as $a | ($a | sort | reverse) == $a' >/dev/null \
  || fail "ps listing is not sorted most-recent-first"
ctl_c ps -json | jq -e '[.jobs[].node] | unique == ["c"]' >/dev/null \
  || fail "job listing missing node identity"

echo "e2e: graph artifact reuse — second node serves the graph from disk"
GS_BUILDS_BEFORE="$(curl -sf "${BASE_C}/metrics" | awk '/^graphstore_builds_total/ {print $2}')"
ART="$(ctl_c submit -process cobra -graph regular:1024,5 -graph-seed 42 -trials 2 -seed 6 -param k=2 -watch -json)" \
  || fail "disk-served job failed"
METRICS_C="$(curl -sf "${BASE_C}/metrics")"
GS_BUILDS_AFTER="$(awk '/^graphstore_builds_total/ {print $2}' <<<"${METRICS_C}")"
GS_DISK_HITS="$(grep '^graphstore_hits_total{tier="disk"}' <<<"${METRICS_C}" | awk '{print $2}')"
[ "${GS_BUILDS_AFTER}" -eq "${GS_BUILDS_BEFORE}" ] \
  || fail "node c rebuilt an already-stored graph (builds ${GS_BUILDS_BEFORE} -> ${GS_BUILDS_AFTER})"
[ "${GS_DISK_HITS:-0}" -ge 1 ] \
  || fail "node c never served a graph from disk: $(grep '^graphstore' <<<"${METRICS_C}")"
jq -e '.job.graph_builds_avoided >= 1' <<<"${ART}" >/dev/null \
  || fail "disk-served job did not report graph_builds_avoided: ${ART}"

stop_daemon "${PID_C}"

echo "e2e: network-native cluster — coordinator + two -cluster-url runners, no shared filesystem"
DATA_D="${WORK}/net-coord"    # the coordinator's private store
DATA_E="${WORK}/net-runner"   # disjoint: holds runner e's graph cache only
start_daemon d "${PORT_D}" coordinator "${DATA_D}"; PID_D="${DAEMON_PID}"
start_http_runner e "${PORT_E}" "${BASE_D}" "${DATA_E}"; PID_E="${DAEMON_PID}"
start_http_runner f "${PORT_F}" "${BASE_D}"; PID_F="${DAEMON_PID}"

ctl_d() { "${COBRACTL}" -server "${BASE_D}" "$@"; }
net_journal() { ctl_d journal -json; }

NODES_NET="$(ctl_d nodes -json | jq '[.nodes[] | select(.alive)] | length')"
[ "${NODES_NET}" -eq 3 ] || fail "network cluster sees ${NODES_NET} alive members, want 3 (d + e + f)"

echo "e2e: submitting the 12-point sweep to the network coordinator"
NET_SUBMIT="$(ctl_d "${SWEEP_ARGS[@]}")"
NET_JOB="$(jq -r '.sweep.id' <<<"${NET_SUBMIT}")"
[ "${NET_JOB}" != "null" ] && [ -n "${NET_JOB}" ] || fail "network sweep rejected: ${NET_SUBMIT}"

echo "e2e: waiting until the coordinator and an HTTP runner have both computed, then killing runner f"
for i in $(seq 1 300); do
  NET_J="$(net_journal)"
  NET_TOTAL="$(jq '.entries | length' <<<"${NET_J}")"
  SPREAD="$(jq '([.entries[].node] | unique) as $n | ($n | index("d") != null) and ($n | index("e") != null)' <<<"${NET_J}")"
  if [ "${SPREAD}" = "true" ] && [ "${NET_TOTAL}" -lt 12 ]; then
    break
  fi
  if [ "${NET_TOTAL}" -ge 12 ]; then
    fail "network sweep drained before runner f could be killed mid-flight (journal=${NET_TOTAL}) — slow the points down"
  fi
  if [ "$i" -eq 300 ]; then
    fail "network cluster never spread work across d and e (journal=${NET_TOTAL}); see ${WORK}/cobrad.e.log"
  fi
  sleep 0.1
done
kill -9 "${PID_F}"
echo "e2e: runner f SIGKILLed with the sweep $(net_journal | jq '.entries | length')/12 computed"

echo "e2e: watching the network sweep to completion on the coordinator"
timeout 180 "${COBRACTL}" -server "${BASE_D}" watch "${NET_JOB}" 2>"${WORK}/watch.net.log" \
  || { cat "${WORK}/watch.net.log" >&2; fail "network sweep did not end in done after the kill"; }

echo "e2e: exactly-once accounting over /v1/cluster/journal"
NET_J="$(net_journal)"
NET_TOTAL="$(jq '.entries | length' <<<"${NET_J}")"
NET_UNIQUE="$(jq '[.entries[].key] | unique | length' <<<"${NET_J}")"
NET_NODES="$(jq '[.entries[].node] | unique | length' <<<"${NET_J}")"
E_POINTS="$(jq '[.entries[] | select(.node=="e")] | length' <<<"${NET_J}")"
D_POINTS="$(jq '[.entries[] | select(.node=="d")] | length' <<<"${NET_J}")"
[ "${NET_TOTAL}" -eq 12 ] || fail "network journal has ${NET_TOTAL} records, want exactly 12 (duplicate or lost work)"
[ "${NET_UNIQUE}" -eq 12 ] || fail "network journal spans ${NET_UNIQUE} distinct points, want 12 — some point was computed twice"
[ "${NET_NODES}" -ge 2 ] || fail "network journal credits ${NET_NODES} node(s), want work spread over HTTP"
[ "${E_POINTS}" -ge 1 ] && [ "${D_POINTS}" -ge 1 ] || fail "survivors d (${D_POINTS}) and e (${E_POINTS}) must both appear in the journal"

echo "e2e: HTTP runner e kept nothing clustered on its disjoint dir"
[ ! -e "${DATA_E}/cluster" ] && [ ! -e "${DATA_E}/leases" ] \
  || fail "runner e wrote cluster state under its private dir: $(ls "${DATA_E}")"

echo "e2e: killed HTTP runner drops out of coordinator-registered discovery"
sleep 3  # past the 3-missed-heartbeats liveness window
ctl_d nodes -json | jq -e '.nodes[] | select(.id=="f") | .alive == false' >/dev/null \
  || fail "killed runner f still reported alive: $(ctl_d nodes -json)"

echo "e2e: network aggregate vs a clusterless single-node run"
ctl_d result "${NET_JOB}" -json | jq -S '.result' >"${WORK}/result.net.json"
"${COBRAD}" -addr "127.0.0.1:${PORT_G}" -workers 4 -job-ttl 10m >"${WORK}/cobrad.g.log" 2>&1 &
PID_G=$!; PIDS+=("${PID_G}")
wait_healthy g "${PORT_G}" "${PID_G}"
GOLD="$("${COBRACTL}" -server "${BASE_G}" "${SWEEP_ARGS[@]}")"
GOLD_ID="$(jq -r '.sweep.id' <<<"${GOLD}")"
timeout 180 "${COBRACTL}" -server "${BASE_G}" watch "${GOLD_ID}" 2>/dev/null \
  || fail "single-node golden sweep did not complete"
"${COBRACTL}" -server "${BASE_G}" result "${GOLD_ID}" -json | jq -S '.result' >"${WORK}/result.single.json"
cmp -s "${WORK}/result.net.json" "${WORK}/result.single.json" \
  || fail "network-cluster aggregate differs from the single-node run: $(diff "${WORK}/result.net.json" "${WORK}/result.single.json" | head)"

stop_daemon "${PID_E}"
stop_daemon "${PID_D}"
stop_daemon "${PID_G}"
echo "e2e: PASS — two-node cluster drained a 12-point sweep through leased claims, survived a SIGKILL mid-sweep with every point computed exactly once (b contributed ${B_POINTS}), a full restart served the identical sweep with zero trials re-run, and a no-shared-filesystem HTTP cluster completed the same sweep exactly once (d=${D_POINTS} e=${E_POINTS}) byte-identical to a single node"
