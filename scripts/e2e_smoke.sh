#!/usr/bin/env bash
# End-to-end durability smoke for cobrad: start the daemon with a
# temporary persistent data dir, submit a 12-point sweep over HTTP,
# stream SSE progress until the terminal event, then restart the daemon
# on the same data dir and assert the resubmitted sweep is served from
# the persistent store (cache hit, identical result, zero trials
# re-run).
#
# Requires: go, curl, jq. Run from the repository root:
#
#   ./scripts/e2e_smoke.sh
set -euo pipefail

PORT="${COBRAD_PORT:-18080}"
ADDR="127.0.0.1:${PORT}"
BASE="http://${ADDR}"
WORK="$(mktemp -d)"
DATA="${WORK}/data"
BIN="${WORK}/cobrad"
SWEEP='{"spec":{"child":"covertime","family":"cycle","sizes":[8,10,12,14,16,18],"ks":[1,2],"trials":3,"seed":99}}'

COBRAD_PID=""
cleanup() {
  [ -n "${COBRAD_PID}" ] && kill "${COBRAD_PID}" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "${WORK}"
}
trap cleanup EXIT

fail() { echo "e2e: FAIL: $*" >&2; exit 1; }

start_daemon() {
  "${BIN}" -addr "${ADDR}" -data-dir "${DATA}" -job-ttl 10m >"${WORK}/cobrad.$1.log" 2>&1 &
  COBRAD_PID=$!
  for _ in $(seq 1 100); do
    if curl -sf "${BASE}/healthz" >/dev/null 2>&1; then return 0; fi
    kill -0 "${COBRAD_PID}" 2>/dev/null || { cat "${WORK}/cobrad.$1.log" >&2; fail "daemon died on startup"; }
    sleep 0.1
  done
  fail "daemon did not become healthy"
}

stop_daemon() {
  kill -TERM "${COBRAD_PID}"
  for _ in $(seq 1 100); do
    kill -0 "${COBRAD_PID}" 2>/dev/null || { COBRAD_PID=""; return 0; }
    sleep 0.1
  done
  fail "daemon did not shut down"
}

echo "e2e: building cobrad"
go build -o "${BIN}" ./cmd/cobrad

echo "e2e: first daemon run (data dir ${DATA})"
start_daemon first

SUBMIT="$(curl -sf "${BASE}/v1/sweeps" -d "${SWEEP}")"
JOB_ID="$(jq -r '.sweep.id' <<<"${SUBMIT}")"
[ "${JOB_ID}" != "null" ] || fail "sweep submission rejected: ${SUBMIT}"
echo "e2e: sweep ${JOB_ID} submitted"

echo "e2e: streaming SSE until terminal"
EVENTS="${WORK}/events.log"
# The stream ends on its own after the terminal status event.
curl -sN --max-time 120 "${BASE}/v1/jobs/${JOB_ID}/events" >"${EVENTS}" || true
STATUS_EVENTS="$(grep -c '^event: status' "${EVENTS}")" || fail "no SSE status events received"
FINAL_STATE="$(grep '^data: ' "${EVENTS}" | tail -1 | sed 's/^data: //' | jq -r '.state')"
[ "${FINAL_STATE}" = "done" ] || fail "final streamed state = ${FINAL_STATE} (events: $(cat "${EVENTS}"))"
echo "e2e: observed ${STATUS_EVENTS} SSE status events, final state done"

CHILDREN="$(curl -sf "${BASE}/v1/sweeps/${JOB_ID}" | jq '.children | length')"
[ "${CHILDREN}" -eq 12 ] || fail "fan-out view has ${CHILDREN} children, want 12"

curl -sf "${BASE}/v1/jobs/${JOB_ID}/result" | jq -S '.result' >"${WORK}/result.first.json"
POINTS="$(jq '.points | length' "${WORK}/result.first.json")"
[ "${POINTS}" -eq 12 ] || fail "result has ${POINTS} points, want 12"

COMPLETED_FIRST="$(curl -sf "${BASE}/metrics" | awk '/^cobrad_jobs_completed_total/ {print $2}')"
echo "e2e: first run completed ${COMPLETED_FIRST} jobs (parent + children)"

echo "e2e: restarting daemon on the same data dir"
stop_daemon
start_daemon second

RESUBMIT="$(curl -sf "${BASE}/v1/sweeps" -d "${SWEEP}")"
JOB2_ID="$(jq -r '.sweep.id' <<<"${RESUBMIT}")"
CACHE_HIT="$(jq -r '.sweep.cache_hit' <<<"${RESUBMIT}")"
STATE2="$(jq -r '.sweep.state' <<<"${RESUBMIT}")"
[ "${CACHE_HIT}" = "true" ] || fail "restarted daemon did not serve sweep from store: ${RESUBMIT}"
[ "${STATE2}" = "done" ] || fail "restarted sweep state = ${STATE2}, want immediate done"

# The SSE stream of an already-terminal job emits the final status and closes.
curl -sN --max-time 30 "${BASE}/v1/jobs/${JOB2_ID}/events" >"${WORK}/events2.log" || true
grep -q '"cache_hit":true' "${WORK}/events2.log" || fail "post-restart SSE missing cached terminal status"

curl -sf "${BASE}/v1/jobs/${JOB2_ID}/result" | jq -S '.result' >"${WORK}/result.second.json"
cmp -s "${WORK}/result.first.json" "${WORK}/result.second.json" \
  || fail "result changed across restart: $(diff "${WORK}/result.first.json" "${WORK}/result.second.json" | head)"

# Zero trials re-run: the only completed job in the fresh process is the
# cache-served parent itself.
METRICS="$(curl -sf "${BASE}/metrics")"
COMPLETED_SECOND="$(awk '/^cobrad_jobs_completed_total/ {print $2}' <<<"${METRICS}")"
STORE_ENTRIES="$(awk '/^cobrad_store_entries/ {print $2}' <<<"${METRICS}")"
[ "${COMPLETED_SECOND}" -eq 1 ] || fail "restarted daemon completed ${COMPLETED_SECOND} jobs, want 1 (cached parent only)"
[ "${STORE_ENTRIES}" -ge 13 ] || fail "store has ${STORE_ENTRIES} records, want >= 13 (12 points + sweep)"

stop_daemon
echo "e2e: PASS — sweep of ${POINTS} points streamed over SSE, survived restart from ${STORE_ENTRIES} store records, byte-identical result with zero trials re-run"
