#!/usr/bin/env bash
# Docs lint: fail if the operator docs have drifted from the code.
# Checks (see scripts/docscheck for the implementation):
#   - every route registered in internal/service appears in docs/API.md
#   - every error-envelope code appears in docs/API.md
#   - every registered process has a row in the README process table
#
# Run from the repository root:
#
#   ./scripts/docs_check.sh
set -euo pipefail
cd "$(dirname "$0")/.."
exec go run ./scripts/docscheck .
