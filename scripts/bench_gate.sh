#!/usr/bin/env bash
# Bench regression gate: measure the engine microbenchmarks with
# cmd/benchjson, then hold the gated hot path (CobraStepExpander) to
# within 15% of the newest committed BENCH_<date>.json baseline (see
# scripts/benchgate for the comparator).
#
# Run from the repository root:
#
#   ./scripts/bench_gate.sh
#
# BENCHTIME (default 1s) trades gate latency against measurement noise;
# BENCHGATE_FLAGS passes extra flags (e.g. -max-regress 0.25) through to
# the comparator.
set -euo pipefail
cd "$(dirname "$0")/.."

fresh="$(mktemp)"
trap 'rm -f "$fresh"' EXIT

go run ./cmd/benchjson -benchtime "${BENCHTIME:-1s}" -out "$fresh"
go run ./scripts/benchgate -fresh "$fresh" ${BENCHGATE_FLAGS:-}
