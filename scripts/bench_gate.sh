#!/usr/bin/env bash
# Bench regression gate: measure the engine microbenchmarks with
# cmd/benchjson, then hold every benchmark in the newest committed
# BENCH_<date>.json baseline to within 15% (see scripts/benchgate for
# the comparator).
#
# Run from the repository root:
#
#   ./scripts/bench_gate.sh
#
# BENCHTIME (default 1s) trades gate latency against measurement noise;
# BENCHGATE_FLAGS passes extra flags (e.g. -max-regress 0.25 or
# -allow-new SomeNewBench) through to the comparator; BENCHGATE_REPORT,
# if set, receives a copy of the comparison table (for CI artifacts).
set -euo pipefail
cd "$(dirname "$0")/.."

fresh="$(mktemp)"
trap 'rm -f "$fresh"' EXIT

go run ./cmd/benchjson -benchtime "${BENCHTIME:-1s}" -out "$fresh"
if [ -n "${BENCHGATE_REPORT:-}" ]; then
    go run ./scripts/benchgate -fresh "$fresh" ${BENCHGATE_FLAGS:-} 2>&1 | tee "$BENCHGATE_REPORT"
    exit "${PIPESTATUS[0]}"
fi
go run ./scripts/benchgate -fresh "$fresh" ${BENCHGATE_FLAGS:-}
