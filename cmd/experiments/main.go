// Command experiments regenerates the paper-reproduction tables indexed
// in DESIGN.md and recorded in EXPERIMENTS.md: one experiment per
// theorem, lemma-level mechanism, or remark of "Better Bounds for
// Coalescing-Branching Random Walks".
//
// Usage:
//
//	experiments                     # run everything at quick scale
//	experiments -scale full         # the EXPERIMENTS.md configuration
//	experiments -only E1,E9         # a subset
//	experiments -markdown           # emit Markdown tables
//
// The selected experiments are submitted as ONE sweep job on the shared
// internal/engine scheduler — the same execution core and fan-out path
// behind cobrad's /v1/sweeps endpoint — which runs each experiment as a
// child point job and aggregates the results in ID order; repeated runs
// within one process are served from the result cache. With -server the
// identical sweep is submitted to a remote cobrad daemon through the
// typed client SDK instead of the in-process engine.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/client"
	"repro/internal/engine"
	"repro/internal/experiments"
)

func main() {
	var (
		scaleFlag = flag.String("scale", "quick", "experiment scale: quick|full")
		only      = flag.String("only", "", "comma-separated experiment IDs (default: all)")
		seed      = flag.Uint64("seed", 1, "root random seed")
		markdown  = flag.Bool("markdown", false, "emit Markdown tables")
		list      = flag.Bool("list", false, "list experiments and exit")
		outDir    = flag.String("out", "", "also write one Markdown file per experiment to this directory")
		server    = flag.String("server", "", "cobrad base URL; empty runs the sweep in-process")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return
	}

	switch *scaleFlag {
	case "quick", "full":
	default:
		fatal(fmt.Errorf("experiments: unknown scale %q", *scaleFlag))
	}

	runners := experiments.All()
	if *only != "" {
		wanted := map[string]bool{}
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
		var filtered []experiments.Runner
		for _, r := range runners {
			if wanted[r.ID] {
				filtered = append(filtered, r)
				delete(wanted, r.ID)
			}
		}
		if len(wanted) > 0 {
			fatal(fmt.Errorf("experiments: unknown IDs requested: %v", keys(wanted)))
		}
		runners = filtered
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	ids := make([]string, len(runners))
	names := make(map[string]string, len(runners))
	for i, r := range runners {
		ids[i] = r.ID
		names[r.ID] = r.Name
	}
	start := time.Now()
	out, err := client.ExecuteSweep(context.Background(), *server, engine.SweepSpec{
		Child: "experiment",
		IDs:   ids,
		Scale: *scaleFlag,
		Seed:  *seed,
	}, len(runners)+1)
	if err != nil {
		fatal(err)
	}

	for _, p := range out.Points {
		fmt.Printf("\n########## %s — %s [%s scale]\n", p.Experiment, names[p.Experiment], *scaleFlag)
		fmt.Printf("claim: %s\n\n", p.Meta["claim"])
		for _, tb := range p.Tables {
			if *markdown {
				fmt.Println(tb.Markdown())
			} else {
				tb.Fprint(os.Stdout)
				fmt.Println()
			}
		}
		for _, f := range p.Findings {
			fmt.Printf("finding: %s\n", f)
		}
		if *outDir != "" {
			if err := writeMarkdown(*outDir, names[p.Experiment], p, *seed); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Printf("\n%d experiments in %v\n", len(out.Points), time.Since(start).Round(time.Millisecond))
}

// writeMarkdown renders one experiment sweep point as a standalone
// Markdown file.
func writeMarkdown(dir, name string, p engine.SweepPointResult, seed uint64) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n\n", p.Experiment, name)
	fmt.Fprintf(&b, "*Claim:* %s\n\n", p.Meta["claim"])
	fmt.Fprintf(&b, "*Configuration:* scale=%s, seed=%d.\n\n", p.Meta["scale"], seed)
	for _, tb := range p.Tables {
		b.WriteString(tb.Markdown())
		b.WriteString("\n")
	}
	b.WriteString("## Findings\n\n")
	for _, f := range p.Findings {
		fmt.Fprintf(&b, "- %s\n", f)
	}
	path := filepath.Join(dir, p.Experiment+".md")
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
