// Command graphinfo prints structural and spectral statistics of a
// generated graph: size, degree profile, diameter, the second eigenvalue
// of the normalized adjacency operator, the spectral gap, and
// conductance brackets (Cheeger bounds, sweep cut, exact brute force for
// tiny graphs, and analytic values for named families).
//
// Usage:
//
//	graphinfo -graph hypercube:8
//	graphinfo -graph regular:1024,5 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/graph"
	"repro/internal/spectral"
)

func main() {
	var (
		graphSpec = flag.String("graph", "grid:2,17", "graph specification (family:params); families: "+strings.Join(cli.Families(), " "))
		seed      = flag.Uint64("seed", 1, "seed for random families")
		dot       = flag.Bool("dot", false, "emit Graphviz DOT instead of statistics")
	)
	flag.Parse()

	g, err := cli.ParseGraph(*graphSpec, *seed)
	if err != nil {
		fatal(err)
	}
	if *dot {
		if err := graph.WriteDOT(os.Stdout, g); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("graph        %s\n", g.Name())
	fmt.Printf("vertices     %d\n", g.N())
	fmt.Printf("edges        %d\n", g.M())
	reg, d := g.IsRegular()
	if reg {
		fmt.Printf("degree       %d-regular\n", d)
	} else {
		fmt.Printf("degree       min %d, max %d, mean %.2f\n",
			g.MinDegree(), g.MaxDegree(), 2*float64(g.M())/float64(g.N()))
	}
	connected := graph.IsConnected(g)
	fmt.Printf("connected    %v\n", connected)
	if connected {
		if g.N() <= 4096 {
			fmt.Printf("diameter     %d (exact)\n", graph.Diameter(g))
		} else {
			fmt.Printf("diameter     ≥ %d (double sweep)\n", graph.DiameterApprox(g, 0))
		}
	}

	res := spectral.Analyze(g)
	fmt.Printf("lambda2      %.6f\n", res.Lambda2)
	fmt.Printf("gap          %.6f\n", res.Gap)
	fmt.Printf("conductance  [%.6f, %.6f]  (Cheeger lower, min(Cheeger upper, sweep cut))\n",
		res.PhiLow, res.PhiHigh)
	if g.N() <= 20 {
		fmt.Printf("conductance  %.6f (exact brute force)\n", spectral.ExactConductance(g))
	}
	if phi, known := analyticConductance(*graphSpec, g); known {
		fmt.Printf("conductance  %.6f (analytic)\n", phi)
	}
	if connected && g.N() <= 2048 {
		if mt, ok := spectral.MixingTime(g, 0.25, 1000000); ok {
			fmt.Printf("mixing time  %d lazy steps to TV ≤ 1/4 (worst start)\n", mt)
		}
	}
}

// analyticConductance returns the known Φ for named families.
func analyticConductance(spec string, g *graph.Graph) (float64, bool) {
	name, _, _ := strings.Cut(spec, ":")
	switch name {
	case "cycle":
		return spectral.CycleConductance(g.N()), true
	case "hypercube":
		dim := 0
		for n := g.N(); n > 1; n /= 2 {
			dim++
		}
		return spectral.HypercubeConductance(dim), true
	case "complete":
		return spectral.CompleteConductance(g.N()), true
	case "torus":
		// Only the 2-D torus formula is tabulated here.
		if reg, d := g.IsRegular(); reg && d == 4 {
			side := 1
			for side*side < g.N() {
				side++
			}
			if side*side == g.N() {
				return spectral.TorusConductance(side), true
			}
		}
	}
	return 0, false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
