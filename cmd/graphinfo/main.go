// Command graphinfo prints structural and spectral statistics of a
// generated graph: size, degree profile, diameter, the second eigenvalue
// of the normalized adjacency operator, the spectral gap, and
// conductance brackets (Cheeger bounds, sweep cut, exact brute force for
// tiny graphs, and analytic values for named families).
//
// Usage:
//
//	graphinfo -graph hypercube:8
//	graphinfo -graph regular:1024,5 -seed 7
//	graphinfo -graph regular:4096,5 -data-dir /var/lib/cobrad -verify
//	graphinfo -graph powerlaw:5000,2.5,2,100 -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cli"
	"repro/internal/graph"
	"repro/internal/graphstore"
	"repro/internal/spectral"
	"repro/internal/stats"
)

func main() {
	var (
		graphSpec = flag.String("graph", "grid:2,17", "graph specification (family:params); families: "+strings.Join(cli.Families(), " "))
		seed      = flag.Uint64("seed", 1, "seed for random families")
		dot       = flag.Bool("dot", false, "emit Graphviz DOT instead of statistics")
		dataDir   = flag.String("data-dir", "", "cobrad data directory; resolve the graph through its artifact store")
		degStats  = flag.Bool("stats", false, "print the degree histogram")
		verify    = flag.Bool("verify", false, "checksum the stored artifact (requires -data-dir)")
	)
	flag.Parse()

	// Resolve through the same artifact store cobrad uses when a data
	// directory is given: a warm artifact is mmapped, a cold one is
	// built and persisted for the daemons sharing the directory.
	gsOpts := graphstore.Options{}
	if *dataDir != "" {
		gsOpts.Dir = filepath.Join(*dataDir, "graphs")
	}
	gs, err := graphstore.Open(gsOpts)
	if err != nil {
		fatal(err)
	}
	g, tier, err := gs.ResolveTier(*graphSpec, *seed)
	if err != nil {
		fatal(err)
	}
	defer gs.Release(g)
	if *dot {
		if err := graph.WriteDOT(os.Stdout, g); err != nil {
			fatal(err)
		}
		return
	}
	if *verify {
		if *dataDir == "" {
			fatal(fmt.Errorf("graphinfo: -verify requires -data-dir"))
		}
		digest, err := gs.VerifyArtifact(*graphSpec, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("artifact     %s\n", digest)
		fmt.Printf("fingerprint  %s\n", graphstore.Fingerprint(*graphSpec, *seed))
	}
	if *dataDir != "" {
		fmt.Printf("served from  %s\n", tier)
	}

	fmt.Printf("graph        %s\n", g.Name())
	fmt.Printf("vertices     %d\n", g.N())
	fmt.Printf("edges        %d\n", g.M())
	reg, d := g.IsRegular()
	if reg {
		fmt.Printf("degree       %d-regular\n", d)
	} else {
		fmt.Printf("degree       min %d, max %d, mean %.2f\n",
			g.MinDegree(), g.MaxDegree(), 2*float64(g.M())/float64(g.N()))
	}
	if *degStats {
		printDegreeHistogram(g)
	}
	connected := graph.IsConnected(g)
	fmt.Printf("connected    %v\n", connected)
	if connected {
		if g.N() <= 4096 {
			fmt.Printf("diameter     %d (exact)\n", graph.Diameter(g))
		} else {
			fmt.Printf("diameter     ≥ %d (double sweep)\n", graph.DiameterApprox(g, 0))
		}
	}

	res := spectral.Analyze(g)
	fmt.Printf("lambda2      %.6f\n", res.Lambda2)
	fmt.Printf("gap          %.6f\n", res.Gap)
	fmt.Printf("conductance  [%.6f, %.6f]  (Cheeger lower, min(Cheeger upper, sweep cut))\n",
		res.PhiLow, res.PhiHigh)
	if g.N() <= 20 {
		fmt.Printf("conductance  %.6f (exact brute force)\n", spectral.ExactConductance(g))
	}
	if phi, known := analyticConductance(*graphSpec, g); known {
		fmt.Printf("conductance  %.6f (analytic)\n", phi)
	}
	if connected && g.N() <= 2048 {
		if mt, ok := spectral.MixingTime(g, 0.25, 1000000); ok {
			fmt.Printf("mixing time  %d lazy steps to TV ≤ 1/4 (worst start)\n", mt)
		}
	}
}

// printDegreeHistogram renders the degree distribution as at most 16
// equal-width bins with a proportional bar chart.
func printDegreeHistogram(g *graph.Graph) {
	n := g.N()
	degs := make([]float64, n)
	for v := int32(0); v < int32(n); v++ {
		degs[v] = float64(g.Degree(v))
	}
	lo, hi := float64(g.MinDegree()), float64(g.MaxDegree())
	if lo == hi {
		fmt.Printf("degrees      all %d vertices have degree %d\n", n, int(lo))
		return
	}
	bins := int(hi-lo) + 1
	if bins > 16 {
		bins = 16
	}
	counts := stats.Histogram(degs, lo, hi+1, bins)
	width := (hi + 1 - lo) / float64(bins)
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	fmt.Printf("degrees      histogram (%d bins)\n", bins)
	for i, c := range counts {
		bLo, bHi := lo+float64(i)*width, lo+float64(i+1)*width
		bar := strings.Repeat("#", c*40/peak)
		fmt.Printf("  [%4d,%4d)  %7d  %s\n", int(bLo), int(bHi), c, bar)
	}
}

// analyticConductance returns the known Φ for named families.
func analyticConductance(spec string, g *graph.Graph) (float64, bool) {
	name, _, _ := strings.Cut(spec, ":")
	switch name {
	case "cycle":
		return spectral.CycleConductance(g.N()), true
	case "hypercube":
		dim := 0
		for n := g.N(); n > 1; n /= 2 {
			dim++
		}
		return spectral.HypercubeConductance(dim), true
	case "complete":
		return spectral.CompleteConductance(g.N()), true
	case "torus":
		// Only the 2-D torus formula is tabulated here.
		if reg, d := g.IsRegular(); reg && d == 4 {
			side := 1
			for side*side < g.N() {
				side++
			}
			if side*side == g.N() {
				return spectral.TorusConductance(side), true
			}
		}
	}
	return 0, false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
