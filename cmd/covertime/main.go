// Command covertime sweeps a graph family over a size list, measures
// k-cobra cover times, fits the scaling exponent, and renders the
// results as text, Markdown, or CSV.
//
// Usage:
//
//	covertime -family grid:2 -sizes 8,16,32,64 -k 2 -trials 20
//	covertime -family cycle -sizes 128,256,512 -k 2 -format csv
//	covertime -family regular:5 -sizes 512,1024,2048 -trials 30
//
// The -family argument is a cli graph spec with the size parameter
// omitted; covertime appends each size. For two-parameter families the
// size is substituted for the marked position: "grid:2" sweeps the side,
// "regular:5" sweeps n with degree 5, "lollipop" sweeps n with
// clique = path = n/2.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sim"
)

func main() {
	var (
		family = flag.String("family", "grid:2", "family sweep spec: grid:<d> | torus:<d> | cycle | path | star | complete | hypercube | margulis | kary:<k> | lollipop | regular:<d>")
		sizes  = flag.String("sizes", "8,16,32", "comma-separated size list")
		k      = flag.Int("k", 2, "cobra branching factor")
		trials = flag.Int("trials", 20, "independent trials per size")
		seed   = flag.Uint64("seed", 1, "root random seed")
		format = flag.String("format", "text", "output format: text|markdown|csv")
	)
	flag.Parse()

	sizeList, err := cli.ParseSizes(*sizes)
	if err != nil {
		fatal(err)
	}

	table := sim.NewTable(
		fmt.Sprintf("%d-cobra cover time sweep: %s", *k, *family),
		"size", "n", "m", "cover mean", "95% CI", "cover max")
	var points []sim.Point
	for si, size := range sizeList {
		g, err := buildFamily(*family, size, rng.Stream(*seed, 9000+si))
		if err != nil {
			fatal(err)
		}
		sample, err := sim.RunTrials(*trials, rng.Stream(*seed, si),
			func(trial int, src *rng.Source) (float64, error) {
				w := core.New(g, core.Config{K: *k}, src)
				w.Reset(0)
				steps, ok := w.RunUntilCovered()
				if !ok {
					return 0, fmt.Errorf("covertime: step cap exceeded on %s", g)
				}
				return float64(steps), nil
			})
		if err != nil {
			fatal(err)
		}
		mean, ci, max := sim.SummaryCells(sample)
		table.AddRowf(size, g.N(), g.M(), mean, ci, max)
		points = append(points, sim.Point{X: float64(size), Sample: sample})
	}

	switch *format {
	case "markdown":
		fmt.Print(table.Markdown())
	case "csv":
		fmt.Print(table.CSV())
	default:
		table.Fprint(os.Stdout)
	}
	if len(points) >= 2 {
		fit := sim.FitExponent(points)
		fmt.Printf("\nscaling fit: cover ≈ %.3g · size^%.3f   (R² = %.4f)\n",
			fit.Constant, fit.Exponent, fit.R2)
	}
}

// buildFamily interprets the sweep spec for one size.
func buildFamily(family string, size int, seed uint64) (*graph.Graph, error) {
	switch {
	case family == "cycle", family == "path", family == "star",
		family == "complete", family == "hypercube", family == "margulis":
		return cli.ParseGraph(fmt.Sprintf("%s:%d", family, size), seed)
	case family == "lollipop":
		return cli.ParseGraph(fmt.Sprintf("lollipop:%d,%d", size/2, size-size/2), seed)
	case len(family) > 5 && family[:5] == "grid:":
		return cli.ParseGraph(fmt.Sprintf("grid:%s,%d", family[5:], size), seed)
	case len(family) > 6 && family[:6] == "torus:":
		return cli.ParseGraph(fmt.Sprintf("torus:%s,%d", family[6:], size), seed)
	case len(family) > 5 && family[:5] == "kary:":
		return cli.ParseGraph(fmt.Sprintf("kary:%s,%d", family[5:], size), seed)
	case len(family) > 8 && family[:8] == "regular:":
		return cli.ParseGraph(fmt.Sprintf("regular:%d,%s", size, family[8:]), seed)
	default:
		return nil, fmt.Errorf("covertime: unknown family sweep spec %q", family)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
