// Command covertime sweeps a graph family over a size list, measures
// k-cobra cover times, fits the scaling exponent, and renders the
// results as text, Markdown, or CSV.
//
// Usage:
//
//	covertime -family grid:2 -sizes 8,16,32,64 -k 2 -trials 20
//	covertime -family cycle -sizes 128,256,512 -k 2 -format csv
//	covertime -family regular:5 -sizes 512,1024,2048 -trials 30
//
// The -family argument is a cli graph spec with the size parameter
// omitted; covertime appends each size. For two-parameter families the
// size is substituted for the marked position: "grid:2" sweeps the side,
// "regular:5" sweeps n with degree 5, "lollipop" sweeps n with
// clique = path = n/2.
//
// The whole size list is submitted as ONE sweep job to the shared
// internal/engine scheduler — the same execution core and fan-out path
// behind cobrad's /v1/sweeps endpoint — which expands it server-side
// into per-size point jobs with the historical seed discipline, so the
// output is byte-identical to the old client-side loop. With -server
// the identical sweep is submitted to a remote cobrad daemon through
// the typed client SDK instead of the in-process engine; the spec,
// seed discipline, and rendering are the same either way.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/client"
	"repro/internal/cli"
	"repro/internal/engine"
	"repro/internal/sim"
)

func main() {
	var (
		family = flag.String("family", "grid:2", "family sweep spec: grid:<d> | torus:<d> | cycle | path | star | complete | hypercube | margulis | kary:<k> | lollipop | regular:<d>")
		sizes  = flag.String("sizes", "8,16,32", "comma-separated size list")
		k      = flag.Int("k", 2, "cobra branching factor")
		trials = flag.Int("trials", 20, "independent trials per size")
		seed   = flag.Uint64("seed", 1, "root random seed")
		format = flag.String("format", "text", "output format: text|markdown|csv")
		server = flag.String("server", "", "cobrad base URL; empty runs the sweep in-process")
	)
	flag.Parse()

	sizeList, err := cli.ParseSizes(*sizes)
	if err != nil {
		fatal(err)
	}

	out, err := client.ExecuteSweep(context.Background(), *server, engine.SweepSpec{
		Child:  "covertime",
		Family: *family,
		Sizes:  sizeList,
		K:      *k,
		Trials: *trials,
		Seed:   *seed,
	}, len(sizeList))
	if err != nil {
		fatal(err)
	}

	table := sim.NewTable(
		fmt.Sprintf("%d-cobra cover time sweep: %s", *k, *family),
		"size", "n", "m", "cover mean", "95% CI", "cover max")
	var points []sim.Point
	for _, p := range out.Points {
		mean, ci, max := sim.SummaryCells(p.Values)
		table.AddRowf(p.Size, int(p.Summary["n"]), int(p.Summary["m"]), mean, ci, max)
		points = append(points, sim.Point{X: float64(p.Size), Sample: p.Values})
	}

	switch *format {
	case "markdown":
		fmt.Print(table.Markdown())
	case "csv":
		fmt.Print(table.CSV())
	default:
		table.Fprint(os.Stdout)
	}
	if len(points) >= 2 {
		fit := sim.FitExponent(points)
		fmt.Printf("\nscaling fit: cover ≈ %.3g · size^%.3f   (R² = %.4f)\n",
			fit.Constant, fit.Exponent, fit.R2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
