// Command covertime sweeps a graph family over a size list, measures
// k-cobra cover times, fits the scaling exponent, and renders the
// results as text, Markdown, or CSV.
//
// Usage:
//
//	covertime -family grid:2 -sizes 8,16,32,64 -k 2 -trials 20
//	covertime -family cycle -sizes 128,256,512 -k 2 -format csv
//	covertime -family regular:5 -sizes 512,1024,2048 -trials 30
//
// The -family argument is a cli graph spec with the size parameter
// omitted; covertime appends each size. For two-parameter families the
// size is substituted for the marked position: "grid:2" sweeps the side,
// "regular:5" sweeps n with degree 5, "lollipop" sweeps n with
// clique = path = n/2.
//
// Each size is one cover-time job submitted to the shared
// internal/engine scheduler — the same execution core behind cobrad —
// so all sizes of the sweep pipeline through the worker pool while
// results are collected in order.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/sim"
)

func main() {
	var (
		family = flag.String("family", "grid:2", "family sweep spec: grid:<d> | torus:<d> | cycle | path | star | complete | hypercube | margulis | kary:<k> | lollipop | regular:<d>")
		sizes  = flag.String("sizes", "8,16,32", "comma-separated size list")
		k      = flag.Int("k", 2, "cobra branching factor")
		trials = flag.Int("trials", 20, "independent trials per size")
		seed   = flag.Uint64("seed", 1, "root random seed")
		format = flag.String("format", "text", "output format: text|markdown|csv")
	)
	flag.Parse()

	sizeList, err := cli.ParseSizes(*sizes)
	if err != nil {
		fatal(err)
	}

	// One engine worker: each cover-time job already fans its trials out
	// across every core via sim.RunTrialsContext, so concurrent jobs
	// would only oversubscribe the CPU. The queue must hold the whole
	// sweep since all sizes are submitted up front.
	eng := engine.New(engine.Options{Workers: 1, QueueDepth: len(sizeList)})
	defer eng.Shutdown(context.Background())

	// Submit every size up front so the sweep pipelines through the
	// worker pool, then collect in order so rendering stays stable.
	jobs := make([]*engine.Job, len(sizeList))
	for si, size := range sizeList {
		spec, err := familySpec(*family, size)
		if err != nil {
			fatal(err)
		}
		jobs[si], err = eng.Submit(&engine.CoverTimeSpec{
			Graph:     spec,
			GraphSeed: rng.Stream(*seed, 9000+si),
			K:         *k,
			Trials:    *trials,
			Seed:      rng.Stream(*seed, si),
		}, 0)
		if err != nil {
			fatal(err)
		}
	}

	table := sim.NewTable(
		fmt.Sprintf("%d-cobra cover time sweep: %s", *k, *family),
		"size", "n", "m", "cover mean", "95% CI", "cover max")
	var points []sim.Point
	for si, size := range sizeList {
		out, err := jobs[si].Wait(context.Background())
		if err != nil {
			fatal(err)
		}
		mean, ci, max := sim.SummaryCells(out.Values)
		table.AddRowf(size, int(out.Summary["n"]), int(out.Summary["m"]), mean, ci, max)
		points = append(points, sim.Point{X: float64(size), Sample: out.Values})
	}

	switch *format {
	case "markdown":
		fmt.Print(table.Markdown())
	case "csv":
		fmt.Print(table.CSV())
	default:
		table.Fprint(os.Stdout)
	}
	if len(points) >= 2 {
		fit := sim.FitExponent(points)
		fmt.Printf("\nscaling fit: cover ≈ %.3g · size^%.3f   (R² = %.4f)\n",
			fit.Constant, fit.Exponent, fit.R2)
	}
}

// familySpec interprets the sweep spec for one size, returning the full
// cli graph spec.
func familySpec(family string, size int) (string, error) {
	switch {
	case family == "cycle", family == "path", family == "star",
		family == "complete", family == "hypercube", family == "margulis":
		return fmt.Sprintf("%s:%d", family, size), nil
	case family == "lollipop":
		return fmt.Sprintf("lollipop:%d,%d", size/2, size-size/2), nil
	case len(family) > 5 && family[:5] == "grid:":
		return fmt.Sprintf("grid:%s,%d", family[5:], size), nil
	case len(family) > 6 && family[:6] == "torus:":
		return fmt.Sprintf("torus:%s,%d", family[6:], size), nil
	case len(family) > 5 && family[:5] == "kary:":
		return fmt.Sprintf("kary:%s,%d", family[5:], size), nil
	case len(family) > 8 && family[:8] == "regular:":
		return fmt.Sprintf("regular:%d,%s", size, family[8:]), nil
	default:
		return "", fmt.Errorf("covertime: unknown family sweep spec %q", family)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
