// Command cobractl is the operator CLI for the cobrad simulation
// daemon, built entirely on the typed client SDK (package client): what
// the SDK can do, cobractl exposes on the command line.
//
// Usage:
//
//	cobractl [-server URL] <command> [flags] [args]
//
// Commands:
//
//	processes            list registered processes with parameter schemas
//	nodes                list cluster members and their liveness
//	journal              list the cluster's exactly-once compute ledger
//	submit               submit one job and (optionally) watch it to completion
//	sweep                submit a server-side sweep across processes × families × ks × sizes
//	watch <job-id>       stream a job's live status (SSE) until terminal;
//	                     -live adds per-round coverage/frontier sparklines
//	result <job-id>      fetch and render the result of a finished job
//	ps                   list jobs, most recent first
//	cancel <job-id>      cancel a queued or running job
//
// Examples:
//
//	cobractl processes
//	cobractl submit -process cobra -graph grid:2,33 -trials 20 -seed 1 -param k=2 -watch
//	cobractl sweep -processes cobra,push-pull -family cycle -sizes 64,128,256 -trials 10 -seed 1 -param k=2 -watch
//	cobractl ps -status running
//	cobractl result j000001
//
// The server address comes from -server, or the COBRAD_URL environment
// variable, or http://127.0.0.1:8080. Machine consumers pass -json to
// any command for raw API payloads.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/client"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/process"
	"repro/internal/sim"
)

const defaultServer = "http://127.0.0.1:8080"

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	// Accept a global -server before the subcommand as well as the
	// per-command flag, so both orderings read naturally; both the
	// space-separated and the -server=URL spellings work.
	args := os.Args[1:]
	server := ""
	switch {
	case args[0] == "-server" || args[0] == "--server":
		if len(args) < 3 {
			usage(os.Stderr)
			os.Exit(2)
		}
		server, args = args[1], args[2:]
	case strings.HasPrefix(args[0], "-server=") || strings.HasPrefix(args[0], "--server="):
		_, server, _ = strings.Cut(args[0], "=")
		args = args[1:]
		if len(args) == 0 {
			usage(os.Stderr)
			os.Exit(2)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "processes":
		err = cmdProcesses(ctx, server, rest)
	case "nodes":
		err = cmdNodes(ctx, server, rest)
	case "journal":
		err = cmdJournal(ctx, server, rest)
	case "submit":
		err = cmdSubmit(ctx, server, rest)
	case "sweep":
		err = cmdSweep(ctx, server, rest)
	case "watch":
		err = cmdWatch(ctx, server, rest)
	case "result":
		err = cmdResult(ctx, server, rest)
	case "ps":
		err = cmdPS(ctx, server, rest)
	case "cancel":
		err = cmdCancel(ctx, server, rest)
	case "help", "-h", "--help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "cobractl: unknown command %q\n\n", cmd)
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cobractl: %v\n", err)
		os.Exit(1)
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `cobractl — client for the cobrad simulation daemon

usage: cobractl [-server URL] <command> [flags] [args]

commands:
  processes            list registered processes with parameter schemas
  nodes                list cluster members (ID, role, liveness)
  journal              list which node computed each key (the exactly-once ledger)
  submit               submit one job (-process/-graph/-param, or -kind/-spec)
  sweep                submit a sweep (-processes/-family/-sizes/-ks, or -spec)
  watch <job-id>       stream live status until terminal (-live adds observable sparklines)
  result <job-id>      fetch and render the result of a finished job
  ps                   list jobs (-status filters)
  cancel <job-id>      cancel a queued or running job

The server address comes from -server, $COBRAD_URL, or `+defaultServer+`.
Run "cobractl <command> -h" for command flags.
`)
}

// newFlagSet builds a command flagset with the shared -server and -json
// flags wired in.
func newFlagSet(name, server string) (*flag.FlagSet, *string, *bool) {
	fs := flag.NewFlagSet("cobractl "+name, flag.ExitOnError)
	def := server
	if def == "" {
		def = os.Getenv("COBRAD_URL")
	}
	if def == "" {
		def = defaultServer
	}
	srv := fs.String("server", def, "cobrad base URL")
	asJSON := fs.Bool("json", false, "emit raw API JSON instead of rendered text")
	return fs, srv, asJSON
}

func dial(server string) (*client.Client, error) {
	return client.New(server)
}

// parseFlexible parses fs accepting flags both before and after the
// first positional argument, so "cobractl result j000001 -json" works
// as naturally as "cobractl result -json j000001".
func parseFlexible(fs *flag.FlagSet, args []string) ([]string, error) {
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	pos := fs.Args()
	if len(pos) <= 1 {
		return pos, nil
	}
	first := pos[0]
	if err := fs.Parse(pos[1:]); err != nil {
		return nil, err
	}
	return append([]string{first}, fs.Args()...), nil
}

// paramFlag collects repeatable -param name=value flags, inferring JSON
// types the way the schema expects them: numbers and booleans parse as
// such, everything else stays a string.
type paramFlag struct{ params process.Params }

func (p *paramFlag) String() string { return fmt.Sprintf("%v", p.params) }

func (p *paramFlag) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("expected name=value, got %q", s)
	}
	if p.params == nil {
		p.params = process.Params{}
	}
	switch {
	case val == "true" || val == "false":
		p.params[name] = val == "true"
	default:
		if f, err := strconv.ParseFloat(val, 64); err == nil {
			p.params[name] = f
		} else {
			p.params[name] = val
		}
	}
	return nil
}

func cmdProcesses(ctx context.Context, server string, args []string) error {
	fs, srv, asJSON := newFlagSet("processes", server)
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := dial(*srv)
	if err != nil {
		return err
	}
	procs, err := c.Processes(ctx)
	if err != nil {
		return err
	}
	if *asJSON {
		return printJSON(map[string]any{"processes": procs})
	}
	for _, p := range procs {
		fmt.Printf("%s\n    %s\n", p.Name, p.Doc)
		for _, ps := range p.Params {
			attrs := []string{ps.Type}
			if ps.Required {
				attrs = append(attrs, "required")
			} else if ps.Default != nil {
				attrs = append(attrs, fmt.Sprintf("default %v", ps.Default))
			}
			if len(ps.Enum) > 0 {
				attrs = append(attrs, "one of "+strings.Join(ps.Enum, "|"))
			}
			fmt.Printf("    -param %-16s %-28s %s\n", ps.Name, "("+strings.Join(attrs, ", ")+")", ps.Doc)
		}
		fmt.Println()
	}
	return nil
}

func cmdNodes(ctx context.Context, server string, args []string) error {
	fs, srv, asJSON := newFlagSet("nodes", server)
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := dial(*srv)
	if err != nil {
		return err
	}
	view, err := c.Nodes(ctx)
	if err != nil {
		return err
	}
	if *asJSON {
		return printJSON(view)
	}
	if !view.Cluster {
		fmt.Println("not clustered (single-node daemon)")
		return nil
	}
	fmt.Printf("this node: %s (%s)\n", view.Node, view.Role)
	fmt.Printf("%-24s %-12s %-22s %-6s %s\n", "ID", "ROLE", "ADDR", "ALIVE", "LAST SEEN")
	for _, n := range view.Nodes {
		addr := n.Addr
		if addr == "" {
			addr = "-"
		}
		fmt.Printf("%-24s %-12s %-22s %-6v %s\n",
			n.ID, n.Role, addr, n.Alive, n.LastSeen.Format(time.RFC3339))
	}
	return nil
}

func cmdJournal(ctx context.Context, server string, args []string) error {
	fs, srv, asJSON := newFlagSet("journal", server)
	node := fs.String("node", "", "filter: entries computed by this node")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := dial(*srv)
	if err != nil {
		return err
	}
	entries, err := c.Journal(ctx)
	if err != nil {
		return err
	}
	if *node != "" {
		kept := entries[:0]
		for _, e := range entries {
			if e.Node == *node {
				kept = append(kept, e)
			}
		}
		entries = kept
	}
	if *asJSON {
		return printJSON(map[string]any{"entries": entries})
	}
	fmt.Printf("%-64s %-24s %s\n", "KEY", "NODE", "COMPUTED")
	for _, e := range entries {
		fmt.Printf("%-64s %-24s %s\n", e.Key, e.Node, e.CompletedAt.Format(time.RFC3339))
	}
	return nil
}

func cmdSubmit(ctx context.Context, server string, args []string) error {
	fs, srv, asJSON := newFlagSet("submit", server)
	var (
		kind      = fs.String("kind", "process", "job kind: process|covertime|cobra|experiment|sweep")
		specJSON  = fs.String("spec", "", "raw spec JSON (@file reads a file, - reads stdin); overrides the convenience flags")
		proc      = fs.String("process", "", "registered process name (kind=process)")
		graph     = fs.String("graph", "", "graph spec, e.g. grid:2,33 (kind=process)")
		graphSeed = fs.Uint64("graph-seed", 0, "seed for randomized graph families")
		trials    = fs.Int("trials", 20, "independent trials")
		seed      = fs.Uint64("seed", 1, "root random seed")
		priority  = fs.Int("priority", 0, "scheduling priority (higher runs first)")
		watch     = fs.Bool("watch", false, "follow the job to completion and fetch its result")
		params    paramFlag
	)
	fs.Var(&params, "param", "process parameter name=value (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := dial(*srv)
	if err != nil {
		return err
	}

	var spec any
	switch {
	case *specJSON != "":
		raw, err := readSpecArg(*specJSON)
		if err != nil {
			return err
		}
		spec = json.RawMessage(raw)
	case *kind == "process":
		if *proc == "" || *graph == "" {
			return fmt.Errorf("submit needs -process and -graph (or -spec); see cobractl processes")
		}
		spec = engine.ProcessSpec{
			Process:   *proc,
			Graph:     *graph,
			GraphSeed: *graphSeed,
			Params:    params.params,
			Trials:    *trials,
			Seed:      *seed,
		}
	default:
		return fmt.Errorf("kind %q needs -spec with the raw spec JSON", *kind)
	}

	st, err := c.Submit(ctx, *kind, spec, *priority)
	if err != nil {
		return err
	}
	if !*watch {
		if *asJSON {
			return printJSON(map[string]any{"job": st})
		}
		fmt.Printf("submitted %s  kind=%s state=%s cache_hit=%v\n", st.ID, st.Kind, st.State, st.CacheHit)
		return nil
	}
	return watchAndRender(ctx, c, st, *asJSON)
}

func cmdSweep(ctx context.Context, server string, args []string) error {
	fs, srv, asJSON := newFlagSet("sweep", server)
	var (
		specJSON  = fs.String("spec", "", "raw SweepSpec JSON (@file reads a file, - reads stdin); overrides the convenience flags")
		child     = fs.String("child", "process", "child job kind: process|covertime|cobra|experiment")
		processes = fs.String("processes", "", "comma-separated process names (child=process)")
		family    = fs.String("family", "", "family sweep spec, e.g. grid:2 or cycle")
		families  = fs.String("families", "", "comma-separated family sweep specs")
		sizes     = fs.String("sizes", "", "comma-separated size list")
		ks        = fs.String("ks", "", "comma-separated branching factors")
		ids       = fs.String("ids", "", "comma-separated experiment IDs (child=experiment)")
		scale     = fs.String("scale", "", "experiment scale: quick|full (child=experiment)")
		trials    = fs.Int("trials", 20, "independent trials per point")
		seed      = fs.Uint64("seed", 1, "root random seed")
		priority  = fs.Int("priority", 0, "scheduling priority (higher runs first)")
		watch     = fs.Bool("watch", false, "follow the sweep to completion and fetch its result")
		params    paramFlag
	)
	fs.Var(&params, "param", "base process parameter name=value (repeatable, child=process)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := dial(*srv)
	if err != nil {
		return err
	}

	var st engine.Status
	if *specJSON != "" {
		raw, err := readSpecArg(*specJSON)
		if err != nil {
			return err
		}
		st, err = c.Submit(ctx, "sweep", json.RawMessage(raw), *priority)
		if err != nil {
			return err
		}
	} else {
		spec := engine.SweepSpec{
			Child:  *child,
			Params: params.params,
			Trials: *trials,
			Seed:   *seed,
			Family: *family,
			Scale:  *scale,
		}
		spec.Processes = splitList(*processes)
		spec.Families = splitList(*families)
		spec.IDs = splitList(*ids)
		if spec.Sizes, err = splitInts(*sizes); err != nil {
			return fmt.Errorf("-sizes: %w", err)
		}
		if spec.Ks, err = splitInts(*ks); err != nil {
			return fmt.Errorf("-ks: %w", err)
		}
		if *child == "experiment" {
			spec.Trials = 0 // experiments carry their own trial plans
		}
		st, err = c.SubmitSweep(ctx, spec, *priority)
		if err != nil {
			return err
		}
	}
	if !*watch {
		if *asJSON {
			return printJSON(map[string]any{"sweep": st})
		}
		fmt.Printf("submitted sweep %s  state=%s cache_hit=%v\n", st.ID, st.State, st.CacheHit)
		return nil
	}
	return watchAndRender(ctx, c, st, *asJSON)
}

func cmdWatch(ctx context.Context, server string, args []string) error {
	fs, srv, asJSON := newFlagSet("watch", server)
	live := fs.Bool("live", false, "render live per-round observables (coverage/frontier sparklines) alongside status")
	pos, err := parseFlexible(fs, args)
	if err != nil {
		return err
	}
	if len(pos) != 1 {
		return fmt.Errorf("usage: cobractl watch [-live] <job-id>")
	}
	c, err := dial(*srv)
	if err != nil {
		return err
	}
	st, err := c.Job(ctx, pos[0])
	if err != nil {
		return err
	}
	var final engine.Status
	if *live {
		final, err = followLivePrinting(ctx, c, st, *asJSON)
	} else {
		final, err = followPrinting(ctx, c, st, *asJSON)
	}
	if err != nil {
		return err
	}
	if final.State != engine.Done {
		return fmt.Errorf("job %s %s: %s", final.ID, final.State, final.Error)
	}
	return nil
}

// followLivePrinting streams the multiplexed events feed, rendering
// per-round observables as they arrive: each status line carries
// coverage and frontier sparklines of the traced trial so far. With
// asJSON every event (status and frames alike) prints as one raw JSON
// line.
func followLivePrinting(ctx context.Context, c *client.Client, st engine.Status, asJSON bool) (engine.Status, error) {
	const sparkWidth = 40
	var coverage, frontier []float64
	trial := -1
	lastLine := ""
	render := func(s engine.Status) {
		if asJSON {
			data, _ := json.Marshal(map[string]any{"status": s})
			fmt.Println(string(data))
			return
		}
		line := fmt.Sprintf("%s  state=%s", s.ID, s.State)
		if s.Total > 0 {
			line += fmt.Sprintf(" progress=%d/%d", s.Done, s.Total)
		}
		if len(coverage) > 0 {
			line += fmt.Sprintf("\n  trial %-4d coverage %s %.0f%%", trial,
				sim.Sparkline(sim.Downsample(coverage, sparkWidth)), 100*coverage[len(coverage)-1])
			line += fmt.Sprintf("\n  %11s frontier %s %d", "",
				sim.Sparkline(sim.Downsample(frontier, sparkWidth)), int(frontier[len(frontier)-1]))
		}
		if line != lastLine {
			fmt.Fprintln(os.Stderr, line)
			lastLine = line
		}
	}
	onFrames := func(frames []obs.Frame) {
		if asJSON {
			data, _ := json.Marshal(map[string]any{"frames": frames})
			fmt.Println(string(data))
			return
		}
		for _, f := range frames {
			if f.Trial != trial {
				// A new traced trial starts a fresh trajectory.
				trial = f.Trial
				coverage = coverage[:0]
				frontier = frontier[:0]
			}
			coverage = append(coverage, f.Coverage)
			frontier = append(frontier, float64(f.Frontier))
		}
	}
	if st.State.Terminal() {
		// Finished job: render the retained series once with the
		// terminal status.
		if view, err := c.Series(ctx, st.ID, 0); err == nil {
			onFrames(view.Frames)
		}
		render(st)
		return st, nil
	}
	return c.FollowLive(ctx, st.ID, render, onFrames)
}

func cmdResult(ctx context.Context, server string, args []string) error {
	fs, srv, asJSON := newFlagSet("result", server)
	pos, err := parseFlexible(fs, args)
	if err != nil {
		return err
	}
	if len(pos) != 1 {
		return fmt.Errorf("usage: cobractl result <job-id>")
	}
	c, err := dial(*srv)
	if err != nil {
		return err
	}
	out, st, err := c.Result(ctx, pos[0])
	if err != nil {
		return err
	}
	if *asJSON {
		return printJSON(map[string]any{"job": st, "result": out})
	}
	renderOutput(out)
	return nil
}

func cmdPS(ctx context.Context, server string, args []string) error {
	fs, srv, asJSON := newFlagSet("ps", server)
	status := fs.String("status", "", "filter: queued|running|done|failed|canceled")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := dial(*srv)
	if err != nil {
		return err
	}
	jobs, err := c.Jobs(ctx, *status)
	if err != nil {
		return err
	}
	if *asJSON {
		return printJSON(map[string]any{"jobs": jobs})
	}
	fmt.Printf("%-9s %-10s %-9s %-10s %-6s %-16s %s\n", "ID", "KIND", "STATE", "PROGRESS", "CACHED", "NODE", "SUBMITTED")
	for _, j := range jobs {
		progress := "-"
		if j.Total > 0 {
			progress = fmt.Sprintf("%d/%d", j.Done, j.Total)
		}
		node := j.Node
		if node == "" {
			node = "-"
		}
		fmt.Printf("%-9s %-10s %-9s %-10s %-6v %-16s %s\n",
			j.ID, j.Kind, j.State, progress, j.CacheHit, node, j.SubmittedAt.Format(time.RFC3339))
	}
	return nil
}

func cmdCancel(ctx context.Context, server string, args []string) error {
	fs, srv, asJSON := newFlagSet("cancel", server)
	pos, err := parseFlexible(fs, args)
	if err != nil {
		return err
	}
	if len(pos) != 1 {
		return fmt.Errorf("usage: cobractl cancel <job-id>")
	}
	c, err := dial(*srv)
	if err != nil {
		return err
	}
	canceled, err := c.Cancel(ctx, pos[0])
	if err != nil {
		return err
	}
	if *asJSON {
		return printJSON(map[string]any{"id": pos[0], "canceled": canceled})
	}
	if canceled {
		fmt.Printf("canceled %s\n", pos[0])
	} else {
		fmt.Printf("%s already terminal\n", pos[0])
	}
	return nil
}

// watchAndRender follows a just-submitted job to its terminal state,
// then fetches and renders its result: the -watch path of submit/sweep.
func watchAndRender(ctx context.Context, c *client.Client, st engine.Status, asJSON bool) error {
	final, err := followPrinting(ctx, c, st, false)
	if err != nil {
		return err
	}
	if final.State != engine.Done {
		return fmt.Errorf("job %s %s: %s", final.ID, final.State, final.Error)
	}
	out, _, err := c.Result(ctx, final.ID)
	if err != nil {
		return err
	}
	if asJSON {
		return printJSON(map[string]any{"job": final, "result": out})
	}
	renderOutput(out)
	return nil
}

// followPrinting streams status updates to stderr (one line per update,
// or raw JSON lines with asJSON) until the job is terminal.
func followPrinting(ctx context.Context, c *client.Client, st engine.Status, asJSON bool) (engine.Status, error) {
	last := ""
	onStatus := func(s engine.Status) {
		if asJSON {
			data, _ := json.Marshal(s)
			fmt.Println(string(data))
			return
		}
		line := fmt.Sprintf("%s  state=%s", s.ID, s.State)
		if s.Total > 0 {
			line += fmt.Sprintf(" progress=%d/%d", s.Done, s.Total)
		}
		if line != last {
			fmt.Fprintln(os.Stderr, line)
			last = line
		}
	}
	if st.State.Terminal() {
		onStatus(st)
		return st, nil
	}
	return c.Follow(ctx, st.ID, onStatus)
}

// renderOutput prints a job output as human text: tables, summary,
// findings, point count.
func renderOutput(out *engine.Output) {
	for _, tb := range out.Tables {
		tb.Fprint(os.Stdout)
		fmt.Println()
	}
	if len(out.Summary) > 0 {
		keys := make([]string, 0, len(out.Summary))
		for k := range out.Summary {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("%-16s %.6g\n", k, out.Summary[k])
		}
	}
	for _, f := range out.Findings {
		fmt.Printf("finding: %s\n", f)
	}
	if len(out.Points) > 0 {
		fmt.Printf("%d sweep points\n", len(out.Points))
	}
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// readSpecArg resolves a -spec argument: literal JSON, @file, or - for
// stdin.
func readSpecArg(arg string) ([]byte, error) {
	switch {
	case arg == "-":
		return io.ReadAll(os.Stdin)
	case strings.HasPrefix(arg, "@"):
		return os.ReadFile(arg[1:])
	default:
		return []byte(arg), nil
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func splitInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out[i] = v
	}
	return out, nil
}
