// Command cobrad is the simulation daemon: it serves cobra-walk,
// cover-time, and experiment jobs over HTTP, backed by the shared
// internal/engine worker pool and result cache.
//
// Usage:
//
//	cobrad -addr :8080 -workers 8 -queue 256 -cache 1024 \
//	       -data-dir /var/lib/cobrad -job-ttl 15m \
//	       -store-max-bytes 1073741824 -store-max-age 720h
//
// Submit a cover-time job and poll it:
//
//	curl -s localhost:8080/v1/jobs -d '{"kind":"covertime","spec":{"graph":"grid:2,16","k":2,"trials":20,"seed":1}}'
//	curl -s localhost:8080/v1/jobs/j000001
//	curl -s localhost:8080/v1/jobs/j000001/result
//
// Submit a server-side sweep and stream its progress:
//
//	curl -s localhost:8080/v1/sweeps -d '{"spec":{"child":"covertime","family":"grid:2","sizes":[8,16,32],"k":2,"trials":20,"seed":1}}'
//	curl -sN localhost:8080/v1/jobs/j000001/events
//
// Observability: every observable job records a per-round series
// (coverage, frontier size, extremal frontier positions) streamed as
// "frames" events on /v1/jobs/{id}/events and queryable at
// /v1/jobs/{id}/series; GET /metrics serves the Prometheus text
// exposition; -log-level controls structured request and job logging;
// -pprof serves net/http/pprof on a loopback side listener:
//
//	cobrad -pprof &
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//
// With -data-dir set, results persist across restarts in a
// content-addressed store: resubmitting a finished spec after a restart
// is served from disk without re-running a single trial. -job-ttl
// bounds how long terminal jobs stay addressable by job ID (their
// results remain reachable by resubmission). -store-max-bytes and
// -store-max-age bound the store itself: a background sweep evicts
// expired records first, then the oldest records until the size cap is
// met, so a long-running daemon's disk footprint stays bounded. Graphs
// resolve through a content-addressed artifact store under
// <data-dir>/graphs: built once per (spec, seed) fingerprint, then
// mmapped by every process sharing the directory; -graph-cache-bytes
// bounds its disk footprint.
//
// Several cobrad instances sharing one -data-dir form a cluster. Start
// each with -cluster (coordinator, runner, or peer) and they drain a
// common workload through leased claims on the shared store: a sweep
// submitted to any node is announced to the cluster, runner/peer nodes
// adopt it, and every point is computed exactly once cluster-wide —
// whoever claims a point's lease runs it, everyone else adopts the
// stored result. A killed node's leases expire after -lease-ttl and
// survivors re-run only the points it never stored.
//
//	cobrad -addr :8080 -data-dir /shared/cobrad -cluster coordinator -node-id a &
//	cobrad -addr :8081 -data-dir /shared/cobrad -cluster runner      -node-id b &
//	curl -s localhost:8080/v1/nodes
//
// A runner (or peer) can instead join over the network, with no shared
// filesystem at all: point it at a disk-backed clustered daemon with
// -cluster-url. Results, lease claims, journal records, sweep
// announcements, cancellations, and node heartbeats then travel as
// /v1/cluster/* RPCs against the coordinator, which arbitrates them on
// the same store its local workers use — the exactly-once guarantees
// are identical to the shared-directory cluster. A -data-dir on such a
// runner is optional and used only for the graph artifact cache; its
// results live on the coordinator.
//
//	cobrad -addr :8080 -data-dir /var/lib/cobrad -cluster coordinator -node-id a &
//	cobrad -addr :8081 -cluster runner -cluster-url http://127.0.0.1:8080 -node-id b &
//	curl -s localhost:8080/v1/cluster/journal
//
// cobrad shuts down gracefully on SIGINT/SIGTERM: it stops accepting
// connections, lets in-flight HTTP requests finish, then drains the job
// queue up to -drain before cancelling whatever is left.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/graphstore"
	"repro/internal/obs/metrics"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		workers       = flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size")
		queue         = flag.Int("queue", 256, "pending job queue depth")
		cache         = flag.Int("cache", 1024, "result cache entries (negative disables)")
		dataDir       = flag.String("data-dir", "", "persistent result store directory (empty: in-memory only)")
		jobTTL        = flag.Duration("job-ttl", engine.DefaultJobTTL, "terminal job retention in the job table (negative disables eviction)")
		drain         = flag.Duration("drain", 30*time.Second, "max time to drain jobs on shutdown")
		storeMaxBytes = flag.Int64("store-max-bytes", 0, "persistent store size cap in bytes; oldest records evicted beyond it (0 disables)")
		storeMaxAge   = flag.Duration("store-max-age", 0, "persistent store record retention; older records evicted (0 disables)")
		storeGCEvery  = flag.Duration("store-gc-interval", time.Minute, "how often the store GC sweep runs")
		graphCacheMax = flag.Int64("graph-cache-bytes", 0, "graph artifact store size cap in bytes; oldest artifacts evicted beyond it (0 disables)")
		clusterMode   = flag.String("cluster", "off", "cluster role: off|coordinator|runner|peer (requires -data-dir or -cluster-url)")
		clusterURL    = flag.String("cluster-url", "", "coordinator base URL; join the cluster over HTTP instead of a shared -data-dir (runner/peer roles only)")
		nodeID        = flag.String("node-id", "", "cluster node identity (default <hostname>-<pid>)")
		leaseTTL      = flag.Duration("lease-ttl", cluster.DefaultLeaseTTL, "point lease TTL; a dead node's work is reclaimed after this long")
		logLevel      = flag.String("log-level", "info", "structured log level: debug|info|warn|error")
		pprofOn       = flag.Bool("pprof", false, "serve net/http/pprof on a side listener (-pprof-addr)")
		pprofAddr     = flag.String("pprof-addr", "127.0.0.1:6060", "pprof listen address (with -pprof)")
	)
	flag.Parse()
	if *clusterURL != "" {
		switch *clusterMode {
		case "runner", "peer":
		case "off":
			fatal(errors.New("cobrad: -cluster-url requires -cluster runner or -cluster peer"))
		default:
			fatal(fmt.Errorf("cobrad: -cluster %s cannot join over -cluster-url: the coordinator is the node the URL points at", *clusterMode))
		}
	}
	if *clusterMode != "off" && *clusterURL == "" && *dataDir == "" {
		fatal(errors.New("cobrad: -cluster requires -data-dir (the shared directory is the cluster) or -cluster-url (join the coordinator over http)"))
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fatal(fmt.Errorf("cobrad: bad -log-level %q: %w", *logLevel, err))
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	reg := metrics.NewRegistry()

	opts := engine.Options{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheSize:  *cache,
		JobTTL:     *jobTTL,
		Logger:     logger,
		Registry:   reg,
	}
	gcStop := make(chan struct{})
	var gcDone, graphGCDone chan struct{}
	var backend cluster.Backend // the cluster membership, whatever its transport
	var cs *cluster.Server      // non-nil on disk-backed clustered daemons: serves /v1/cluster/* mutations
	if *dataDir != "" {
		// With -cluster-url, the local directory holds only the graph
		// artifact cache: results, leases, and the journal live on the
		// coordinator.
		if *clusterURL == "" {
			st, err := store.Open(*dataDir)
			if err != nil {
				fatal(err)
			}
			if skipped := st.Skipped(); skipped > 0 {
				log.Printf("cobrad: store scan skipped %d invalid record files in %s", skipped, *dataDir)
			}
			log.Printf("cobrad: persistent store at %s (%d records, %d bytes)", *dataDir, st.Len(), st.TotalBytes())
			opts.Store = st
			if *storeMaxBytes > 0 || *storeMaxAge > 0 {
				st.SetLimits(store.Limits{MaxBytes: *storeMaxBytes, MaxAge: *storeMaxAge})
				gcDone = make(chan struct{})
				go storeGCLoop(st, *storeGCEvery, gcStop, gcDone)
			}
			if *clusterMode != "off" {
				cl, err := cluster.Join(st, cluster.Config{
					NodeID:   *nodeID,
					Role:     cluster.Role(*clusterMode),
					Addr:     *addr,
					LeaseTTL: *leaseTTL,
				})
				if err != nil {
					fatal(err)
				}
				backend = cl
				opts.Cluster = cl
				opts.NodeID = cl.NodeID()
				// Any disk-backed member can arbitrate for HTTP runners:
				// mount the coordinator-side RPC authority over the same
				// store and membership its local workers use.
				cs = cluster.NewServer(st, cl)
				log.Printf("cobrad: joined cluster at %s as %s (%s, lease-ttl %v)",
					*dataDir, cl.NodeID(), cl.Role(), cl.LeaseTTL())
			}
		}
		// Graph artifacts live beside the result records: every node
		// sharing this -data-dir serves decoded CSR graphs from the same
		// mmapped files instead of rebuilding them.
		gs, err := graphstore.Open(graphstore.Options{Dir: filepath.Join(*dataDir, "graphs")})
		if err != nil {
			fatal(err)
		}
		if skipped := gs.Skipped(); skipped > 0 {
			log.Printf("cobrad: graph store scan skipped %d invalid artifact files", skipped)
		}
		gstats := gs.Stats()
		log.Printf("cobrad: graph artifact store at %s (%d artifacts, %d bytes)",
			filepath.Join(*dataDir, "graphs"), gstats.DiskFiles, gstats.DiskBytes)
		opts.Graphs = gs
		if *graphCacheMax > 0 {
			gs.SetLimits(store.Limits{MaxBytes: *graphCacheMax})
			graphGCDone = make(chan struct{})
			go graphGCLoop(gs, *storeGCEvery, gcStop, graphGCDone)
		}
	}
	if *clusterURL != "" {
		hb, err := cluster.JoinHTTP(cluster.HTTPConfig{
			BaseURL:  *clusterURL,
			NodeID:   *nodeID,
			Role:     cluster.Role(*clusterMode),
			Addr:     *addr,
			LeaseTTL: *leaseTTL,
		})
		if err != nil {
			fatal(err)
		}
		backend = hb
		opts.Cluster = hb
		opts.NodeID = hb.NodeID()
		// The coordinator's content-addressed store, over RPC: this node
		// needs no result directory of its own.
		opts.Store = hb.RemoteStore()
		log.Printf("cobrad: joined cluster at %s as %s (%s, lease-ttl %v)",
			*clusterURL, hb.NodeID(), hb.Role(), hb.LeaseTTL())
	}
	eng := engine.New(opts)

	svcOpts := []service.Option{service.WithRegistry(reg), service.WithLogger(logger)}
	if backend != nil {
		svcOpts = append(svcOpts, service.WithCluster(backend))
	}
	if cs != nil {
		svcOpts = append(svcOpts, service.WithClusterServer(cs))
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: service.New(eng, svcOpts...).Handler(),
	}

	// The pprof listener is a separate, default-off server bound to
	// loopback: net/http/pprof registers on http.DefaultServeMux, which
	// the API server deliberately does not use, so profiling never leaks
	// onto the public address.
	if *pprofOn {
		go func() {
			log.Printf("cobrad: pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("cobrad: pprof server: %v", err)
			}
		}()
	}

	// Every clustered node runs the watch loop: roles that adopt drain
	// sweeps announced by the rest of the cluster into their own engine
	// (so a sweep submitted anywhere drains everywhere), and every role
	// applies cross-node cancellations to its local jobs. The loop is
	// generic over the backend — it polls the shared directory or the
	// coordinator's RPCs the same way.
	watchStop := make(chan struct{})
	var watchDone chan struct{}
	if backend != nil {
		hooks := cluster.WatchHooks{
			Cancel: func(fp string, canceledAt time.Time) {
				if n := eng.CancelFingerprint(fp, canceledAt); n > 0 {
					log.Printf("cobrad: canceled %d local job(s) for %.12s (cluster cancellation)", n, fp)
				}
			},
		}
		if backend.Role().Adopts() {
			hooks.HasResult = func(fp string) bool {
				if opts.Store == nil {
					return false
				}
				_, ok, _ := opts.Store.Get(fp)
				return ok
			}
			hooks.Submit = func(ann cluster.Announcement) error {
				if eng.HasLiveFingerprint(ann.Fingerprint) {
					return nil // already running here (submitted directly)
				}
				spec, err := engine.DecodeSpec(ann.Kind, ann.Spec)
				if err != nil {
					log.Printf("cobrad: ignoring undecodable announcement %.12s from %s: %v",
						ann.Fingerprint, ann.Origin, err)
					return nil
				}
				if _, err := eng.Submit(spec, ann.Priority); err != nil {
					if errors.Is(err, engine.ErrQueueFull) {
						return err // backpressure: retried next scan
					}
					log.Printf("cobrad: cannot adopt sweep %.12s from %s: %v",
						ann.Fingerprint, ann.Origin, err)
					return nil
				}
				log.Printf("cobrad: adopted sweep %.12s from node %s", ann.Fingerprint, ann.Origin)
				return nil
			}
		}
		watchDone = make(chan struct{})
		go func() {
			defer close(watchDone)
			cluster.Watch(backend, watchStop, hooks)
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("cobrad: listening on %s (workers=%d queue=%d cache=%d job-ttl=%v)", *addr, *workers, *queue, *cache, *jobTTL)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	log.Printf("cobrad: shutting down (drain %v)", *drain)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("cobrad: http shutdown: %v", err)
	}
	// Stop watching before draining, so the engine is not handed new
	// sweeps while it shuts down.
	close(watchStop)
	if watchDone != nil {
		<-watchDone
	}
	if err := eng.Shutdown(shutdownCtx); err != nil {
		log.Printf("cobrad: engine shutdown: %v", err)
	}
	close(gcStop)
	if gcDone != nil {
		<-gcDone
	}
	if graphGCDone != nil {
		<-graphGCDone
	}
	if backend != nil {
		backend.Leave()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	log.Printf("cobrad: stopped")
}

// storeGCLoop applies the store's eviction limits on a fixed cadence —
// once right away, so a daemon restarted over an oversized store trims
// it before serving traffic, then every interval until shutdown.
func storeGCLoop(st *store.Store, interval time.Duration, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	sweep := func() {
		removed, freed, err := st.GC(time.Now())
		if err != nil {
			log.Printf("cobrad: store gc: %v", err)
		}
		if removed > 0 {
			log.Printf("cobrad: store gc evicted %d records (%d bytes); %d records (%d bytes) remain",
				removed, freed, st.Len(), st.TotalBytes())
		}
	}
	sweep()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			sweep()
		}
	}
}

// graphGCLoop mirrors storeGCLoop for the graph artifact store.
func graphGCLoop(gs *graphstore.Store, interval time.Duration, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	sweep := func() {
		removed, freed := gs.GC(time.Now())
		if removed > 0 {
			st := gs.Stats()
			log.Printf("cobrad: graph gc evicted %d artifacts (%d bytes); %d artifacts (%d bytes) remain",
				removed, freed, st.DiskFiles, st.DiskBytes)
		}
	}
	sweep()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			sweep()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
