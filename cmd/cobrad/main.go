// Command cobrad is the simulation daemon: it serves cobra-walk,
// cover-time, and experiment jobs over HTTP, backed by the shared
// internal/engine worker pool and result cache.
//
// Usage:
//
//	cobrad -addr :8080 -workers 8 -queue 256 -cache 1024 \
//	       -data-dir /var/lib/cobrad -job-ttl 15m
//
// Submit a cover-time job and poll it:
//
//	curl -s localhost:8080/v1/jobs -d '{"kind":"covertime","spec":{"graph":"grid:2,16","k":2,"trials":20,"seed":1}}'
//	curl -s localhost:8080/v1/jobs/j000001
//	curl -s localhost:8080/v1/jobs/j000001/result
//
// Submit a server-side sweep and stream its progress:
//
//	curl -s localhost:8080/v1/sweeps -d '{"spec":{"child":"covertime","family":"grid:2","sizes":[8,16,32],"k":2,"trials":20,"seed":1}}'
//	curl -sN localhost:8080/v1/jobs/j000001/events
//
// With -data-dir set, results persist across restarts in a
// content-addressed store: resubmitting a finished spec after a restart
// is served from disk without re-running a single trial. -job-ttl
// bounds how long terminal jobs stay addressable by job ID (their
// results remain reachable by resubmission).
//
// cobrad shuts down gracefully on SIGINT/SIGTERM: it stops accepting
// connections, lets in-flight HTTP requests finish, then drains the job
// queue up to -drain before cancelling whatever is left.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size")
		queue   = flag.Int("queue", 256, "pending job queue depth")
		cache   = flag.Int("cache", 1024, "result cache entries (negative disables)")
		dataDir = flag.String("data-dir", "", "persistent result store directory (empty: in-memory only)")
		jobTTL  = flag.Duration("job-ttl", engine.DefaultJobTTL, "terminal job retention in the job table (negative disables eviction)")
		drain   = flag.Duration("drain", 30*time.Second, "max time to drain jobs on shutdown")
	)
	flag.Parse()

	opts := engine.Options{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheSize:  *cache,
		JobTTL:     *jobTTL,
	}
	if *dataDir != "" {
		st, err := store.Open(*dataDir)
		if err != nil {
			fatal(err)
		}
		if skipped := st.Skipped(); skipped > 0 {
			log.Printf("cobrad: store scan skipped %d invalid record files in %s", skipped, *dataDir)
		}
		log.Printf("cobrad: persistent store at %s (%d records)", *dataDir, st.Len())
		opts.Store = st
	}
	eng := engine.New(opts)
	srv := &http.Server{
		Addr:    *addr,
		Handler: service.New(eng).Handler(),
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("cobrad: listening on %s (workers=%d queue=%d cache=%d job-ttl=%v)", *addr, *workers, *queue, *cache, *jobTTL)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	log.Printf("cobrad: shutting down (drain %v)", *drain)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("cobrad: http shutdown: %v", err)
	}
	if err := eng.Shutdown(shutdownCtx); err != nil {
		log.Printf("cobrad: engine shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	log.Printf("cobrad: stopped")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
