// Command benchjson runs the repository's engine microbenchmarks via
// testing.Benchmark and writes the results as a JSON baseline file, so
// the performance trajectory of the hot paths is recorded in-tree and
// comparable across PRs:
//
//	go run ./cmd/benchjson                 # writes BENCH_<date>.json
//	go run ./cmd/benchjson -out stdout     # prints to stdout
//	make bench-baseline                    # Makefile alias
//	make profile                           # cpu.pprof + mem.pprof via the flags below
//
// -cpuprofile and -memprofile write pprof profiles spanning the
// benchmark runs, so the remaining per-round kernel cost stays
// attributable with `go tool pprof` without hand-rolling a harness.
//
// The benchmark set mirrors the engine microbenchmarks of bench_test.go
// (step kernels at steady state, full covers, graph construction) and
// additionally pins the sparse kernel alone, so a regression in either
// kernel of the dual-mode engine is visible even when the adaptive
// switch hides it.
//
// KEEP IN SYNC with bench_test.go: a benchmark here and its namesake
// there must use the same graph, seeds, config, and warmup, or the
// committed BENCH_<date>.json baselines stop being comparable with
// `go test -bench` output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"repro"
	"repro/internal/graphstore"
)

// result is one benchmark measurement in the emitted JSON.
type result struct {
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_per_op"`
	Iters   int                `json:"iterations"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// baseline is the emitted document.
type baseline struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Benchtime string   `json:"benchtime"`
	Results   []result `json:"results"`
}

// expander returns the 10k-vertex 5-regular steady-state benchmark graph.
func expander() *repro.Graph {
	g, err := repro.RandomRegular(10000, 5, 1)
	if err != nil {
		panic(err)
	}
	return g
}

// steadyWalk returns a cobra walk stepped to steady state on g.
func steadyWalk(g *repro.Graph, cfg repro.CobraConfig) *repro.CobraWalk {
	w := repro.NewCobraWalk(g, cfg, repro.NewRand(1))
	w.Reset(0)
	for i := 0; i < 60; i++ {
		w.Step()
	}
	return w
}

func main() {
	testing.Init() // registers test.benchtime, used to size testing.Benchmark runs
	out := flag.String("out", "", "output path (default BENCH_<date>.json; \"stdout\" prints)")
	benchtime := flag.Duration("benchtime", 2*time.Second, "per-benchmark measuring time")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile spanning the benchmark runs to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile taken after the benchmark runs to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	benchmarks := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"CobraStepExpander", func(b *testing.B) {
			w := steadyWalk(expander(), repro.CobraConfig{K: 2})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Step()
			}
		}},
		{"CobraStepExpanderSparse", func(b *testing.B) {
			w := steadyWalk(expander(), repro.CobraConfig{K: 2, DenseTheta: -1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Step()
			}
		}},
		{"CobraStepPowerLaw", func(b *testing.B) {
			g := repro.PowerLaw(10000, 2.5, 2, 40, 7)
			w := steadyWalk(g, repro.CobraConfig{K: 2})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Step()
			}
		}},
		{"CobraStepPowerLawAlias", func(b *testing.B) {
			g := repro.PowerLaw(10000, 2.5, 2, 40, 7)
			w := steadyWalk(g, repro.CobraConfig{K: 2, UseAlias: true})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Step()
			}
		}},
		{"CobraStepPowerLawSparse", func(b *testing.B) {
			g := repro.PowerLaw(10000, 2.5, 2, 40, 7)
			w := steadyWalk(g, repro.CobraConfig{K: 2, DenseTheta: -1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Step()
			}
		}},
		{"CobraCoverGrid", func(b *testing.B) {
			g := repro.Grid(2, 33)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := repro.NewCobraWalk(g, repro.CobraConfig{K: 2}, repro.NewTrialRand(1, i))
				w.Reset(0)
				if _, ok := w.RunUntilCovered(); !ok {
					b.Fatal("cover failed")
				}
			}
		}},
		{"CobraCoverExpander", func(b *testing.B) {
			g := expander()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := repro.NewCobraWalk(g, repro.CobraConfig{K: 2}, repro.NewTrialRand(3, i))
				w.Reset(0)
				if _, ok := w.RunUntilCovered(); !ok {
					b.Fatal("cover failed")
				}
			}
		}},
		{"WaltStep", func(b *testing.B) {
			g, err := repro.RandomRegular(10000, 5, 2)
			if err != nil {
				b.Fatal(err)
			}
			p := repro.NewWaltAtVertex(g, 5000, 0, repro.WaltConfig{Lazy: true}, repro.NewRand(1))
			for i := 0; i < 60; i++ {
				p.Step()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Step()
			}
		}},
		{"WaltStepDense", func(b *testing.B) {
			g, err := repro.RandomRegular(10000, 5, 2)
			if err != nil {
				b.Fatal(err)
			}
			p := repro.NewWaltAtVertex(g, 5000, 0, repro.WaltConfig{DenseTheta: 10000}, repro.NewRand(1))
			for i := 0; i < 60; i++ {
				p.Step()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Step()
			}
		}},
		{"CobraCoverNoActiveList", func(b *testing.B) {
			g := expander()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := repro.NewCobraWalk(g, repro.CobraConfig{K: 2}, repro.NewTrialRand(4, i))
				w.Reset(0)
				if _, ok := w.RunUntilCovered(); !ok {
					b.Fatal("cover failed")
				}
			}
		}},
		{"CobraCoverEagerFrontier", func(b *testing.B) {
			g := expander()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := repro.NewCobraWalk(g, repro.CobraConfig{K: 2, EagerFrontier: true}, repro.NewTrialRand(4, i))
				w.Reset(0)
				if _, ok := w.RunUntilCovered(); !ok {
					b.Fatal("cover failed")
				}
			}
		}},
		{"GossipPush", func(b *testing.B) {
			g, err := repro.RandomRegular(4096, 5, 4)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := repro.NewGossip(g, repro.Push, 0, repro.NewTrialRand(2, i))
				if _, ok := p.CompletionTime(1000000); !ok {
					b.Fatal("gossip failed")
				}
			}
		}},
		{"GraphBuildRegular", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := repro.RandomRegular(10000, 5, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"GraphResolveCold", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gs, err := graphstore.Open(graphstore.Options{})
				if err != nil {
					b.Fatal(err)
				}
				g, err := gs.Resolve("regular:4096,5", 1)
				if err != nil {
					b.Fatal(err)
				}
				gs.Release(g)
			}
		}},
		{"GraphResolveWarm", func(b *testing.B) {
			dir, err := os.MkdirTemp("", "benchjson-graphs-")
			if err != nil {
				b.Fatal(err)
			}
			gs, err := graphstore.Open(graphstore.Options{Dir: dir})
			if err != nil {
				b.Fatal(err)
			}
			g, err := gs.Resolve("regular:4096,5", 1)
			if err != nil {
				b.Fatal(err)
			}
			gs.Release(g)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := gs.Resolve("regular:4096,5", 1)
				if err != nil {
					b.Fatal(err)
				}
				gs.Release(g)
			}
			b.StopTimer()
			os.RemoveAll(dir)
		}},
	}

	doc := baseline{
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Benchtime: benchtime.String(),
	}
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, bm := range benchmarks {
		r := testing.Benchmark(bm.fn)
		fmt.Fprintf(os.Stderr, "%-28s %12d ns/op  (%d iters)\n",
			bm.name, r.NsPerOp(), r.N)
		doc.Results = append(doc.Results, result{
			Name:    bm.name,
			NsPerOp: float64(r.NsPerOp()),
			Iters:   r.N,
		})
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runtime.GC() // materialize the steady-state heap before sampling
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	path := *out
	if path == "stdout" {
		os.Stdout.Write(data)
		return
	}
	if path == "" {
		path = "BENCH_" + doc.Date + ".json"
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}
