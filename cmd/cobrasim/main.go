// Command cobrasim runs one spreading process on one graph and reports
// cover or hitting times over independent trials.
//
// Usage:
//
//	cobrasim -graph grid:2,33 -process cobra -k 2 -trials 20
//	cobrasim -graph lollipop:32,32 -process rw -target 63 -trials 10
//	cobrasim -graph regular:1024,5 -process push -trials 20
//
// Processes: cobra (k-cobra walk), walt (Section 4 process, -pebbles),
// rw (simple random walk), parallel (-walkers independent walks), push,
// pushpull (gossip). If -target is set, the hitting time to that vertex
// is measured instead of the cover time.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/walk"
	"repro/internal/walt"
)

func main() {
	var (
		graphSpec = flag.String("graph", "grid:2,33", "graph specification (family:params); families: "+strings.Join(cli.Families(), " "))
		process   = flag.String("process", "cobra", "process: cobra|walt|rw|parallel|push|pushpull")
		k         = flag.Int("k", 2, "cobra branching factor")
		pebbles   = flag.Int("pebbles", 0, "walt pebble count (default n/2)")
		walkers   = flag.Int("walkers", 8, "parallel walker count")
		start     = flag.Int("start", 0, "start vertex")
		target    = flag.Int("target", -1, "hitting-time target vertex (-1 = measure cover time)")
		trials    = flag.Int("trials", 20, "independent trials")
		seed      = flag.Uint64("seed", 1, "root random seed")
		maxSteps  = flag.Int("max-steps", 0, "step cap per trial (0 = auto)")
	)
	flag.Parse()

	g, err := cli.ParseGraph(*graphSpec, *seed)
	if err != nil {
		fatal(err)
	}
	if !graph.IsConnected(g) {
		fatal(fmt.Errorf("cobrasim: %s is disconnected; walks cannot cover it", g))
	}
	if *start < 0 || *start >= g.N() {
		fatal(fmt.Errorf("cobrasim: start vertex %d out of range [0,%d)", *start, g.N()))
	}
	if *target >= g.N() {
		fatal(fmt.Errorf("cobrasim: target vertex %d out of range [0,%d)", *target, g.N()))
	}
	cap := *maxSteps
	if cap == 0 {
		cap = core.DefaultMaxSteps(g.N())
	}

	sample, err := sim.RunTrials(*trials, *seed, func(trial int, src *rng.Source) (float64, error) {
		steps, ok, err := runOnce(g, *process, *k, *pebbles, *walkers,
			int32(*start), int32(*target), cap, src)
		if err != nil {
			return 0, err
		}
		if !ok {
			return 0, fmt.Errorf("cobrasim: trial %d exceeded %d steps", trial, cap)
		}
		return float64(steps), nil
	})
	if err != nil {
		fatal(err)
	}

	s := stats.Summarize(sample)
	mean, hw := stats.MeanCI(sample)
	kind := "cover"
	if *target >= 0 {
		kind = fmt.Sprintf("hit(%d)", *target)
	}
	fmt.Printf("graph     %s\n", g)
	fmt.Printf("process   %s\n", describeProcess(*process, *k, *pebbles, *walkers, g.N()))
	fmt.Printf("measure   %s time over %d trials (seed %d)\n", kind, *trials, *seed)
	fmt.Printf("mean      %.1f ± %.1f (95%% CI)\n", mean, hw)
	fmt.Printf("median    %.1f   [q25 %.1f, q75 %.1f]\n", s.Median, s.Q25, s.Q75)
	fmt.Printf("min/max   %.0f / %.0f\n", s.Min, s.Max)
}

func describeProcess(process string, k, pebbles, walkers, n int) string {
	switch process {
	case "cobra":
		return fmt.Sprintf("%d-cobra walk", k)
	case "walt":
		if pebbles == 0 {
			pebbles = n / 2
		}
		return fmt.Sprintf("walt process (%d pebbles, lazy)", pebbles)
	case "parallel":
		return fmt.Sprintf("%d parallel random walks", walkers)
	default:
		return process
	}
}

func runOnce(g *graph.Graph, process string, k, pebbles, walkers int,
	start, target int32, cap int, src *rng.Source) (int, bool, error) {
	switch process {
	case "cobra":
		w := core.New(g, core.Config{K: k, MaxSteps: cap}, src)
		w.Reset(start)
		if target >= 0 {
			steps, ok := w.RunUntilHit(target)
			return steps, ok, nil
		}
		steps, ok := w.RunUntilCovered()
		return steps, ok, nil
	case "walt":
		if pebbles == 0 {
			pebbles = g.N() / 2
			if pebbles < 1 {
				pebbles = 1
			}
		}
		p := walt.NewAtVertex(g, pebbles, start, walt.Config{Lazy: true, MaxSteps: cap}, src)
		if target >= 0 {
			steps, ok := p.HittingTime(target)
			return steps, ok, nil
		}
		steps, ok := p.CoverTime()
		return steps, ok, nil
	case "rw":
		s := walk.NewSimple(g, start, src)
		if target >= 0 {
			steps, ok := s.HittingTime(target, cap)
			return steps, ok, nil
		}
		steps, ok := s.CoverTime(cap)
		return steps, ok, nil
	case "parallel":
		p := walk.NewParallel(g, walkers, start, src)
		if target >= 0 {
			return 0, false, fmt.Errorf("cobrasim: hitting time not supported for parallel walks")
		}
		steps, ok := p.CoverTime(cap)
		return steps, ok, nil
	case "push", "pushpull":
		mode := gossip.Push
		if process == "pushpull" {
			mode = gossip.PushPull
		}
		p := gossip.New(g, mode, start, src)
		if target >= 0 {
			return 0, false, fmt.Errorf("cobrasim: hitting time not supported for gossip")
		}
		steps, ok := p.CompletionTime(cap)
		return steps, ok, nil
	default:
		return 0, false, fmt.Errorf("cobrasim: unknown process %q", process)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
