# Development entry points. CI runs the same commands (see
# .github/workflows/ci.yml); bench-baseline records the performance
# trajectory of the hot paths as a BENCH_<date>.json file in-tree.

GO ?= go

.PHONY: build test race bench bench-smoke bench-baseline bench-gate profile profile-server fmt vet cover e2e docs-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark sweep (experiments + engine microbenchmarks).
bench:
	$(GO) test -bench=. -benchtime=2s -run '^$$' ./...

# One iteration per benchmark: a fast compile-and-smoke gate for CI.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

# Record the engine-microbenchmark baseline as BENCH_<date>.json.
bench-baseline:
	$(GO) run ./cmd/benchjson

# Regression gate: hold the gated hot path (CobraStepExpander) to
# within 15% of the newest committed BENCH_<date>.json. CI runs this;
# BENCHTIME=2s tightens the measurement locally.
bench-gate:
	./scripts/bench_gate.sh

# Profile the engine microbenchmarks: cpu.pprof + mem.pprof for
# `go tool pprof`, keeping the remaining per-round kernel cost
# attributable.
profile:
	$(GO) run ./cmd/benchjson -benchtime 500ms -out /dev/null \
		-cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "wrote cpu.pprof and mem.pprof — inspect with: go tool pprof cpu.pprof"

# Profile a live daemon: cobrad with the pprof side listener up, ready
# for `go tool pprof http://127.0.0.1:6060/debug/pprof/profile`.
profile-server:
	$(GO) run ./cmd/cobrad -pprof

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# Coverage over the durability core, gated at the CI threshold.
cover:
	$(GO) test -coverprofile=coverage.out ./internal/engine/ ./internal/store/ ./internal/graphstore/
	./scripts/coverage_gate.sh coverage.out 80

# End-to-end smoke: two-node cobrad cluster over one data dir, sweep
# drained through leased claims, runner killed mid-sweep, restart with
# zero trials re-run.
e2e:
	./scripts/e2e_smoke.sh

# Docs lint: API routes, error codes, and registered processes must be
# documented (docs/API.md, README process table).
docs-check:
	./scripts/docs_check.sh
