package repro

// One benchmark per reproduction experiment (E1-E16, see DESIGN.md), so
// `go test -bench=.` regenerates every paper-validation measurement at
// quick scale, plus engine microbenchmarks for the hot paths. Key
// derived quantities (scaling exponents, bound ratios) are attached via
// b.ReportMetric, so the benchmark log doubles as a results record.

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/graphstore"
)

// benchExperiment runs one registry experiment per iteration and reports
// its headline numeric finding when one can be extracted.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	runner, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := runner.Run(experiments.Quick, uint64(1000+i))
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		if v, ok := firstNumber(last.Findings); ok {
			b.ReportMetric(v, "headline")
		}
	}
}

// firstNumber extracts the first floating-point number appearing in the
// findings, the experiment's headline quantity (an exponent or ratio).
func firstNumber(findings []string) (float64, bool) {
	for _, f := range findings {
		for _, tok := range strings.FieldsFunc(f, func(r rune) bool {
			return !(r == '.' || r == '-' || (r >= '0' && r <= '9'))
		}) {
			if v, err := strconv.ParseFloat(tok, 64); err == nil && tok != "-" && strings.Contains(tok, ".") {
				return v, true
			}
		}
	}
	return 0, false
}

func BenchmarkE1GridCover(b *testing.B)       { benchExperiment(b, "E1") }
func BenchmarkE2GridDrift(b *testing.B)       { benchExperiment(b, "E2") }
func BenchmarkE3QueueDrift(b *testing.B)      { benchExperiment(b, "E3") }
func BenchmarkE4Conductance(b *testing.B)     { benchExperiment(b, "E4") }
func BenchmarkE5Expander(b *testing.B)        { benchExperiment(b, "E5") }
func BenchmarkE6WaltDominance(b *testing.B)   { benchExperiment(b, "E6") }
func BenchmarkE7TensorCollision(b *testing.B) { benchExperiment(b, "E7") }
func BenchmarkE8RegularHitting(b *testing.B)  { benchExperiment(b, "E8") }
func BenchmarkE9Lollipop(b *testing.B)        { benchExperiment(b, "E9") }
func BenchmarkE10BiasedWalk(b *testing.B)     { benchExperiment(b, "E10") }
func BenchmarkE11Dominance(b *testing.B)      { benchExperiment(b, "E11") }
func BenchmarkE12Trees(b *testing.B)          { benchExperiment(b, "E12") }
func BenchmarkE13Star(b *testing.B)           { benchExperiment(b, "E13") }
func BenchmarkE14Matthews(b *testing.B)       { benchExperiment(b, "E14") }
func BenchmarkE15BranchingK(b *testing.B)     { benchExperiment(b, "E15") }
func BenchmarkE16Baselines(b *testing.B)      { benchExperiment(b, "E16") }
func BenchmarkE17BranchingVar(b *testing.B)   { benchExperiment(b, "E17") }
func BenchmarkE18Trajectories(b *testing.B)   { benchExperiment(b, "E18") }
func BenchmarkE19RapidCoverage(b *testing.B)  { benchExperiment(b, "E19") }
func BenchmarkE20FaultTolerance(b *testing.B) { benchExperiment(b, "E20") }

// --- engine microbenchmarks -------------------------------------------------
//
// KEEP IN SYNC with cmd/benchjson, which re-runs these workloads (same
// graphs, seeds, configs, warmups) to record BENCH_<date>.json baselines.

// BenchmarkCobraStepExpander measures one cobra round at steady state on
// a 10k-vertex expander: the per-round cost Theorem 8's wall-clock
// depends on.
func BenchmarkCobraStepExpander(b *testing.B) {
	g, err := RandomRegular(10000, 5, 1)
	if err != nil {
		b.Fatal(err)
	}
	w := NewCobraWalk(g, CobraConfig{K: 2}, NewRand(1))
	w.Reset(0)
	for i := 0; i < 60; i++ {
		w.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step()
	}
	b.ReportMetric(float64(w.ActiveCount()), "active")
}

// BenchmarkCobraStepExpanderSparse is BenchmarkCobraStepExpander with
// the dense kernel disabled: it pins the seed-stable sparse path so a
// regression in either half of the dual-mode engine is visible even
// when the adaptive switch would mask it.
func BenchmarkCobraStepExpanderSparse(b *testing.B) {
	g, err := RandomRegular(10000, 5, 1)
	if err != nil {
		b.Fatal(err)
	}
	w := NewCobraWalk(g, CobraConfig{K: 2, DenseTheta: -1}, NewRand(1))
	w.Reset(0)
	for i := 0; i < 60; i++ {
		w.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step()
	}
	b.ReportMetric(float64(w.ActiveCount()), "active")
}

// BenchmarkCobraStepPowerLaw measures one cobra round at steady state
// on a 10k-vertex power-law graph with the default irregular sampler
// (per-vertex offset + fixed-point multiply): irregular degrees take
// the same O(1)-per-draw dense path as regular graphs.
func BenchmarkCobraStepPowerLaw(b *testing.B) {
	g := PowerLaw(10000, 2.5, 2, 40, 7)
	w := NewCobraWalk(g, CobraConfig{K: 2}, NewRand(1))
	w.Reset(0)
	for i := 0; i < 60; i++ {
		w.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step()
	}
	b.ReportMetric(float64(w.ActiveCount()), "active")
}

// BenchmarkCobraStepPowerLawAlias is BenchmarkCobraStepPowerLaw with
// draws routed through the Walker alias table (Config.UseAlias): kept
// in the gated set so the opt-in sampler's cost stays measured against
// the default.
func BenchmarkCobraStepPowerLawAlias(b *testing.B) {
	g := PowerLaw(10000, 2.5, 2, 40, 7)
	w := NewCobraWalk(g, CobraConfig{K: 2, UseAlias: true}, NewRand(1))
	w.Reset(0)
	for i := 0; i < 60; i++ {
		w.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step()
	}
	b.ReportMetric(float64(w.ActiveCount()), "active")
}

// BenchmarkCobraStepPowerLawSparse is BenchmarkCobraStepPowerLaw pinned
// to the sparse list kernel — the pre-dense, per-vertex modulo path
// irregular graphs used to take. The dense samplers are measured
// against this.
func BenchmarkCobraStepPowerLawSparse(b *testing.B) {
	g := PowerLaw(10000, 2.5, 2, 40, 7)
	w := NewCobraWalk(g, CobraConfig{K: 2, DenseTheta: -1}, NewRand(1))
	w.Reset(0)
	for i := 0; i < 60; i++ {
		w.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step()
	}
	b.ReportMetric(float64(w.ActiveCount()), "active")
}

// BenchmarkCobraCoverGrid measures a full cover run on the paper's
// [0,32]² grid.
func BenchmarkCobraCoverGrid(b *testing.B) {
	g := Grid(2, 33)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := NewCobraWalk(g, CobraConfig{K: 2}, NewTrialRand(1, i))
		w.Reset(0)
		if _, ok := w.RunUntilCovered(); !ok {
			b.Fatal("cover failed")
		}
	}
}

// BenchmarkWaltStep measures one Walt round with n/2 pebbles on an
// expander, the Theorem 8 proof configuration.
func BenchmarkWaltStep(b *testing.B) {
	g, err := RandomRegular(10000, 5, 2)
	if err != nil {
		b.Fatal(err)
	}
	p := NewWaltAtVertex(g, 5000, 0, WaltConfig{Lazy: true}, NewRand(1))
	for i := 0; i < 60; i++ {
		p.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

// BenchmarkWaltStepDense measures one non-lazy Walt round with the
// count-based dense kernel forced on every round (θ >= n): the pure
// dense round cost, without lazy-coin skips diluting the average.
func BenchmarkWaltStepDense(b *testing.B) {
	g, err := RandomRegular(10000, 5, 2)
	if err != nil {
		b.Fatal(err)
	}
	p := NewWaltAtVertex(g, 5000, 0, WaltConfig{DenseTheta: 10000}, NewRand(1))
	for i := 0; i < 60; i++ {
		p.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

// BenchmarkCobraCoverNoActiveList measures a full expander cover in the
// default bitset-resident frontier mode (no per-round active-list
// materialization); BenchmarkCobraCoverEagerFrontier is the same cover
// with EagerFrontier set, pinning the cost the default mode avoids.
func BenchmarkCobraCoverNoActiveList(b *testing.B) {
	g, err := RandomRegular(10000, 5, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := NewCobraWalk(g, CobraConfig{K: 2}, NewTrialRand(4, i))
		w.Reset(0)
		if _, ok := w.RunUntilCovered(); !ok {
			b.Fatal("cover failed")
		}
	}
}

// BenchmarkCobraCoverEagerFrontier: see BenchmarkCobraCoverNoActiveList.
func BenchmarkCobraCoverEagerFrontier(b *testing.B) {
	g, err := RandomRegular(10000, 5, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := NewCobraWalk(g, CobraConfig{K: 2, EagerFrontier: true}, NewTrialRand(4, i))
		w.Reset(0)
		if _, ok := w.RunUntilCovered(); !ok {
			b.Fatal("cover failed")
		}
	}
}

// BenchmarkGraphBuildRegular measures random 5-regular construction
// (configuration model + repair), the dominant setup cost of expander
// sweeps.
func BenchmarkGraphBuildRegular(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RandomRegular(10000, 5, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpectralAnalyze measures conductance estimation on a
// 1000-vertex expander (power iteration + sweep cut).
func BenchmarkSpectralAnalyze(b *testing.B) {
	g, err := RandomRegular(1000, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AnalyzeSpectrum(g)
	}
}

// BenchmarkJointWalk measures the Lemma 11 two-pebble walk step.
func BenchmarkJointWalk(b *testing.B) {
	g, err := RandomRegular(10000, 5, 3)
	if err != nil {
		b.Fatal(err)
	}
	j := NewJointWalk(g, 0, 5000, true, NewRand(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Step()
	}
}

// BenchmarkGraphResolveCold measures a graph artifact store miss: every
// iteration opens a fresh memory-only store, so each resolve pays the
// full regular:4096,5 configuration-model build.
func BenchmarkGraphResolveCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gs, err := graphstore.Open(graphstore.Options{})
		if err != nil {
			b.Fatal(err)
		}
		g, err := gs.Resolve("regular:4096,5", 1)
		if err != nil {
			b.Fatal(err)
		}
		gs.Release(g)
	}
}

// BenchmarkGraphResolveWarm measures the steady-state hit path of the
// graph artifact store: the graph is resident, so a resolve is a
// fingerprint hash plus a refcount. The cold/warm ratio is the store's
// reason to exist.
func BenchmarkGraphResolveWarm(b *testing.B) {
	gs, err := graphstore.Open(graphstore.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	g, err := gs.Resolve("regular:4096,5", 1)
	if err != nil {
		b.Fatal(err)
	}
	gs.Release(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := gs.Resolve("regular:4096,5", 1)
		if err != nil {
			b.Fatal(err)
		}
		gs.Release(g)
	}
}

// BenchmarkGossipPush measures full push-gossip completion on an
// expander, the E16 baseline.
func BenchmarkGossipPush(b *testing.B) {
	g, err := RandomRegular(4096, 5, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewGossip(g, Push, 0, NewTrialRand(2, i))
		if _, ok := p.CompletionTime(1000000); !ok {
			b.Fatal("gossip failed")
		}
	}
}
