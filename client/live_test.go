package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/process"
)

func TestSeriesRoundTrip(t *testing.T) {
	c, _ := newTestClient(t, engine.Options{Workers: 1})
	ctx := context.Background()

	_, final, err := c.Run(ctx, "process", engine.ProcessSpec{
		Process: "cobra", Graph: "regular:128,4", Trials: 4, Seed: 9,
		Params: process.Params{"k": 2.0},
	}, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	view, err := c.Series(ctx, final.ID, 0)
	if err != nil {
		t.Fatalf("series: %v", err)
	}
	if view.Job != final.ID || len(view.Frames) == 0 || view.Capacity <= 0 {
		t.Fatalf("series view = %+v, want frames for %s", view, final.ID)
	}
	// The cursor contract: reading from Next returns nothing new.
	tail, err := c.Series(ctx, final.ID, view.Next)
	if err != nil {
		t.Fatalf("incremental series: %v", err)
	}
	if len(tail.Frames) != 0 || tail.Next != view.Next {
		t.Errorf("since=Next returned %d frames, next %d", len(tail.Frames), tail.Next)
	}
}

func TestFollowLiveStreamsFrames(t *testing.T) {
	c, _ := newTestClient(t, engine.Options{Workers: 1})
	ctx := context.Background()

	st, err := c.SubmitProcess(ctx, engine.ProcessSpec{
		Process: "cobra", Graph: "regular:256,4", Trials: 32, Seed: 4,
		Params: process.Params{"k": 2.0},
	}, 0)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var frames int
	var statuses int
	final, err := c.FollowLive(ctx, st.ID,
		func(engine.Status) { statuses++ },
		func(fs []obs.Frame) { frames += len(fs) })
	if err != nil {
		t.Fatalf("follow live: %v", err)
	}
	if final.State != engine.Done {
		t.Fatalf("final state = %s (%s)", final.State, final.Error)
	}
	if statuses == 0 || frames == 0 {
		t.Errorf("saw %d statuses and %d frames, want both > 0", statuses, frames)
	}
}

func TestFollowLiveUnknownJobDoesNotRetry(t *testing.T) {
	c, _ := newTestClient(t, engine.Options{Workers: 1})
	start := time.Now()
	_, err := c.FollowLive(context.Background(), "j424242", nil, nil)
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.Code != "not_found" {
		t.Fatalf("err = %v, want not_found", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Errorf("a 404 burned %v in retries", time.Since(start))
	}
}

// scriptedSSE serves hand-written SSE payloads per connection so parser
// edge cases (split data lines, comments, mid-stream drops) are exact.
type scriptedSSE struct {
	payloads []string
	conns    atomic.Int64
	lastID   atomic.Value // string: Last-Event-ID of the latest connection
}

func (s *scriptedSSE) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := int(s.conns.Add(1)) - 1
	s.lastID.Store(r.Header.Get("Last-Event-ID"))
	if n >= len(s.payloads) {
		http.Error(w, "no more scripted connections", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	fmt.Fprint(w, s.payloads[n])
}

func scriptedClient(t *testing.T, h http.Handler) *Client {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	c, err := New(ts.URL)
	if err != nil {
		t.Fatalf("new client: %v", err)
	}
	return c
}

const terminalStatus = `{"id":"j1","kind":"process","state":"done","priority":0,"cache_hit":false,"fingerprint":"f","progress_done":1,"progress_total":1,"submitted_at":"2026-08-08T00:00:00Z"}`

// TestFollowLiveParserEdgeCases drives the SSE parser over one scripted
// stream mixing comment keep-alives, an id'd frames event whose data is
// split across two data: lines, an unknown event type, and the terminal
// status.
func TestFollowLiveParserEdgeCases(t *testing.T) {
	payload := ": keepalive\n\n" +
		"id: 3\nevent: frames\n" +
		`data: [{"trial":0,"round":1,"covered":1,"coverage":0.5,` + "\n" +
		`data: "frontier":1,"min_pos":0,"max_pos":0}]` + "\n\n" +
		"event: mystery\ndata: {}\n\n" +
		": another comment\n\n" +
		"event: status\ndata: " + terminalStatus + "\n\n"
	srv := &scriptedSSE{payloads: []string{payload}}
	c := scriptedClient(t, srv)

	var got []obs.Frame
	final, err := c.FollowLive(context.Background(), "j1", nil,
		func(fs []obs.Frame) { got = append(got, fs...) })
	if err != nil {
		t.Fatalf("follow live: %v", err)
	}
	if final.State != engine.Done || final.ID != "j1" {
		t.Fatalf("final = %+v", final)
	}
	if len(got) != 1 || got[0].Covered != 1 || got[0].Frontier != 1 || got[0].Coverage != 0.5 {
		t.Fatalf("frames = %+v, want the one split-line frame", got)
	}
	if srv.conns.Load() != 1 {
		t.Errorf("scripted stream reconnected %d times", srv.conns.Load()-1)
	}
}

// TestFollowLiveReconnectsWithLastEventID pins reconnect semantics: a
// stream that dies after delivering frames is reopened with the frames
// cursor as Last-Event-ID, and the second connection finishes the job.
func TestFollowLiveReconnectsWithLastEventID(t *testing.T) {
	first := "id: 7\nevent: frames\n" +
		`data: [{"trial":0,"round":1,"covered":2,"coverage":1,"frontier":1,"min_pos":0,"max_pos":0}]` + "\n\n"
	// Connection ends without a terminal status -> client reconnects.
	second := "event: status\ndata: " + terminalStatus + "\n\n"
	srv := &scriptedSSE{payloads: []string{first, second}}
	c := scriptedClient(t, srv)

	final, err := c.FollowLive(context.Background(), "j1", nil, nil)
	if err != nil {
		t.Fatalf("follow live: %v", err)
	}
	if final.State != engine.Done {
		t.Fatalf("final = %+v", final)
	}
	if srv.conns.Load() != 2 {
		t.Fatalf("connections = %d, want 2", srv.conns.Load())
	}
	if lei, _ := srv.lastID.Load().(string); lei != "7" {
		t.Errorf("reconnect Last-Event-ID = %q, want 7", lei)
	}
}

// TestFollowLiveGivesUpAfterBoundedRetries checks the retry bound: a
// server that always drops before the terminal status exhausts the
// reconnect budget instead of looping forever.
func TestFollowLiveGivesUpAfterBoundedRetries(t *testing.T) {
	var conns atomic.Int64
	c := scriptedClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns.Add(1)
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "event: status\ndata: {\"id\":\"j1\",\"state\":\"running\"}\n\n")
	}))
	_, err := c.FollowLive(context.Background(), "j1", nil, nil)
	if err == nil {
		t.Fatal("endless non-terminal stream did not error")
	}
	if got := conns.Load(); got != followLiveReconnects+1 {
		t.Errorf("connections = %d, want %d", got, followLiveReconnects+1)
	}
}

// TestFollowLiveRetrySchedule pins that FollowLive rides the shared
// retryable-transport helper (the same retry.Policy the cluster RPC
// client uses) with its historical schedule: reconnects+1 bounded
// attempts, deterministic 100ms-base exponential backoff capped at 2s.
func TestFollowLiveRetrySchedule(t *testing.T) {
	p := followLivePolicy()
	if got := p.Attempts(); got != followLiveReconnects+1 {
		t.Errorf("policy attempts = %d, want %d", got, followLiveReconnects+1)
	}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w {
			t.Errorf("delay after attempt %d = %v, want %v", i+1, got, w)
		}
	}
}

// TestFollowLiveHonorsContextDuringBackoff pins the policy's context
// semantics end to end: a context that expires while FollowLive sleeps
// between reconnects aborts the wait instead of burning the budget.
func TestFollowLiveHonorsContextDuringBackoff(t *testing.T) {
	var conns atomic.Int64
	c := scriptedClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns.Add(1)
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "event: status\ndata: {\"id\":\"j1\",\"state\":\"running\"}\n\n")
	}))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.FollowLive(ctx, "j1", nil, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context deadline", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("context expiry took %v to surface", elapsed)
	}
	if got := conns.Load(); got != 1 {
		t.Errorf("connections = %d, want 1 (deadline hit during the first backoff)", got)
	}
}

// TestFollowIgnoresNewEventTypes pins backward compatibility of the
// plain Follow parser: id: lines and frames events from the upgraded
// daemon are ignored, status semantics unchanged.
func TestFollowIgnoresNewEventTypes(t *testing.T) {
	payload := "id: 12\nevent: frames\n" +
		`data: [{"trial":0,"round":1,"covered":1,"coverage":1,"frontier":1,"min_pos":0,"max_pos":0}]` + "\n\n" +
		"event: status\ndata: " + terminalStatus + "\n\n"
	srv := &scriptedSSE{payloads: []string{payload}}
	c := scriptedClient(t, srv)
	final, err := c.Follow(context.Background(), "j1", nil)
	if err != nil {
		t.Fatalf("follow: %v", err)
	}
	if final.State != engine.Done {
		t.Fatalf("final = %+v", final)
	}
}
