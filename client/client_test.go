package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/process"
	"repro/internal/service"
)

func newTestClient(t *testing.T, opts engine.Options) (*Client, *engine.Engine) {
	t.Helper()
	eng := engine.New(opts)
	ts := httptest.NewServer(service.New(eng).Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = eng.Shutdown(ctx)
	})
	c, err := New(ts.URL)
	if err != nil {
		t.Fatalf("new client: %v", err)
	}
	return c, eng
}

func TestNewRejectsBadURL(t *testing.T) {
	for _, bad := range []string{"://", "ftp://host"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestProcessesDiscovery(t *testing.T) {
	c, _ := newTestClient(t, engine.Options{Workers: 1})
	procs, err := c.Processes(context.Background())
	if err != nil {
		t.Fatalf("processes: %v", err)
	}
	if len(procs) < 8 {
		t.Fatalf("discovery returned %d processes, want >= 8", len(procs))
	}
	byName := map[string]process.Info{}
	for _, p := range procs {
		byName[p.Name] = p
	}
	cobra, ok := byName["cobra"]
	if !ok || len(cobra.Params) == 0 {
		t.Fatalf("cobra missing from discovery: %+v", procs)
	}
}

func TestSubmitFollowResultRoundTrip(t *testing.T) {
	c, _ := newTestClient(t, engine.Options{Workers: 2})
	ctx := context.Background()

	var updates []engine.Status
	out, final, err := c.Run(ctx, "process", engine.ProcessSpec{
		Process: "cobra", Graph: "grid:2,6", Trials: 4, Seed: 1,
		Params: process.Params{"k": 2.0},
	}, func(st engine.Status) { updates = append(updates, st) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if final.State != engine.Done || len(out.Values) != 4 {
		t.Fatalf("final = %+v, out = %+v", final, out)
	}
	if len(updates) == 0 || !updates[len(updates)-1].State.Terminal() {
		t.Errorf("status stream = %+v, want terminal last update", updates)
	}

	// The same spec through the deprecated covertime kind must produce
	// identical values: the adapter and the generic path share one
	// registered process.
	legacy, _, err := c.Run(ctx, "covertime", map[string]any{
		"graph": "grid:2,6", "k": 2, "trials": 4, "seed": 1,
	}, nil)
	if err != nil {
		t.Fatalf("legacy run: %v", err)
	}
	if !reflect.DeepEqual(legacy.Values, out.Values) {
		t.Errorf("legacy values %v != process values %v", legacy.Values, out.Values)
	}
}

func TestSweepRoundTrip(t *testing.T) {
	c, _ := newTestClient(t, engine.Options{Workers: 2, QueueDepth: 64})
	ctx := context.Background()

	out, final, err := c.RunSweep(ctx, engine.SweepSpec{
		Child:     "process",
		Processes: []string{"cobra", "push"},
		Family:    "cycle",
		Sizes:     []int{6, 8},
		Trials:    2,
		Seed:      3,
		Params:    process.Params{"k": 2.0},
	}, nil)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(out.Points) != 4 {
		t.Fatalf("sweep points = %d, want 4", len(out.Points))
	}
	sweep, children, err := c.Sweep(ctx, final.ID)
	if err != nil {
		t.Fatalf("sweep view: %v", err)
	}
	if sweep.Kind != "sweep" || len(children) != 4 {
		t.Errorf("sweep view = %+v with %d children, want 4", sweep, len(children))
	}
}

func TestErrorEnvelopeSurfacesAsTypedError(t *testing.T) {
	c, _ := newTestClient(t, engine.Options{Workers: 1})
	ctx := context.Background()

	_, err := c.Submit(ctx, "process", engine.ProcessSpec{
		Process: "teleport", Graph: "cycle:8", Trials: 1,
	}, 0)
	var apiErr *Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("submit error = %v (%T), want *client.Error", err, err)
	}
	if apiErr.Code != "bad_request" || apiErr.StatusCode != 400 {
		t.Errorf("envelope = %+v, want bad_request/400", apiErr)
	}
	if apiErr.IsRetryable() {
		t.Error("bad_request reported as retryable")
	}

	if _, err := c.Job(ctx, "j424242"); err == nil {
		t.Error("unknown job lookup succeeded")
	} else if !errors.As(err, &apiErr) || apiErr.Code != "not_found" {
		t.Errorf("unknown job error = %v, want not_found envelope", err)
	}
}

func TestJobsListingAndFilter(t *testing.T) {
	c, _ := newTestClient(t, engine.Options{Workers: 2})
	ctx := context.Background()

	for seed := 1; seed <= 2; seed++ {
		if _, _, err := c.Run(ctx, "process", engine.ProcessSpec{
			Process: "push", Graph: "cycle:8", Trials: 2, Seed: uint64(seed),
		}, nil); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	jobs, err := c.Jobs(ctx, "done")
	if err != nil {
		t.Fatalf("jobs: %v", err)
	}
	if len(jobs) != 2 {
		t.Fatalf("done jobs = %d, want 2", len(jobs))
	}
	// Most recent first, deterministically.
	if jobs[0].ID <= jobs[1].ID {
		t.Errorf("listing order = %s, %s; want most recent first", jobs[0].ID, jobs[1].ID)
	}
	if _, err := c.Jobs(ctx, "bogus"); err == nil {
		t.Error("bogus status filter accepted")
	}
}

func TestCancelAndWait(t *testing.T) {
	c, eng := newTestClient(t, engine.Options{Workers: 1})
	ctx := context.Background()

	// Park the single worker so the next submission stays queued.
	release := make(chan struct{})
	defer close(release)
	if _, err := eng.Submit(&blockSpec{release: release}, 10); err != nil {
		t.Fatalf("park worker: %v", err)
	}
	st, err := c.SubmitProcess(ctx, engine.ProcessSpec{
		Process: "push", Graph: "cycle:8", Trials: 2, Seed: 9,
	}, 0)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ok, err := c.Cancel(ctx, st.ID)
	if err != nil || !ok {
		t.Fatalf("cancel = %v, %v; want true", ok, err)
	}
	final, err := c.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != engine.Canceled {
		t.Errorf("state = %s, want canceled", final.State)
	}
}

// blockSpec parks a worker until released, mirroring the service tests'
// deterministic scheduling helper.
type blockSpec struct {
	Name    string `json:"name"`
	release <-chan struct{}
}

func (s *blockSpec) Kind() string    { return "block" }
func (s *blockSpec) Validate() error { return nil }
func (s *blockSpec) Run(ctx context.Context, progress func(done, total int)) (*engine.Output, error) {
	select {
	case <-s.release:
		return &engine.Output{}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
