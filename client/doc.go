// Package client is the typed Go SDK for the cobrad v1 HTTP API: the
// programmatic face of the simulation service, used by cmd/cobractl
// and by cmd/covertime / cmd/experiments when pointed at a remote
// daemon with -server.
//
// Every call takes a context and returns typed values (engine.Status,
// engine.Output, process.Info, cluster.NodeInfo) rather than raw JSON;
// non-2xx responses surface as *client.Error carrying the service's
// machine-readable error envelope {code, message, detail}, with
// IsRetryable distinguishing backpressure from caller mistakes.
//
// The call surface mirrors the API one-to-one:
//
//	Processes             GET /v1/processes — discovery
//	Nodes                 GET /v1/nodes — cluster membership
//	Submit/SubmitProcess  POST /v1/jobs
//	SubmitSweep           POST /v1/sweeps
//	Job / Jobs            GET /v1/jobs/{id}, GET /v1/jobs
//	Sweep                 GET /v1/sweeps/{id} — fan-out view
//	Result                GET /v1/jobs/{id}/result
//	Cancel                DELETE /v1/jobs/{id}
//	Follow                GET /v1/jobs/{id}/events — SSE to terminal
//	Health                GET /healthz
//
// On top sit the convenience loops: Wait (poll to terminal), Run
// (submit → Follow → Result), RunSweep (the same for sweeps), and
// ExecuteSweep, the shared batch-CLI path that runs a sweep either
// against a remote daemon or on a throwaway in-process engine with
// identical output.
//
//	c, _ := client.New("http://127.0.0.1:8080")
//	out, _, err := c.Run(ctx, "process", engine.ProcessSpec{
//	    Process: "cobra", Graph: "grid:2,33", Trials: 20, Seed: 1,
//	    Params: process.Params{"k": 2.0},
//	}, nil)
package client
