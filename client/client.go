package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/process"
)

// Error is the service's uniform error envelope, decorated with the
// HTTP status it arrived under.
type Error struct {
	// StatusCode is the HTTP response status.
	StatusCode int `json:"-"`
	// Code is the machine-readable identifier (bad_request, not_found,
	// not_finished, job_failed, unavailable, internal).
	Code string `json:"code"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// Detail, when present, is an actionable hint.
	Detail string `json:"detail,omitempty"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Code == "" {
		return fmt.Sprintf("cobrad: HTTP %d", e.StatusCode)
	}
	return fmt.Sprintf("cobrad: %s: %s", e.Code, e.Message)
}

// IsRetryable reports whether the error is transient backpressure
// (queue full, shutdown in progress) rather than a caller mistake.
func (e *Error) IsRetryable() bool { return e.Code == "unavailable" }

// Client is a cobrad API client. The zero value is not usable; create
// one with New. All methods are safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transport, instrumentation). The default client has no timeout:
// per-call deadlines come from the caller's context, which must also
// bound long-lived Follow streams.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New creates a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8080").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: bad base URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q must be http or https", baseURL)
	}
	return &Client{
		base: strings.TrimRight(u.String(), "/"),
		hc:   &http.Client{},
	}, nil
}

// do issues one JSON request and decodes the response into out (when
// non-nil). Non-2xx responses decode the error envelope into *Error.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rdr io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
		rdr = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rdr)
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("client: read %s %s response: %w", method, path, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp.StatusCode, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("client: decode %s %s response: %w", method, path, err)
		}
	}
	return nil
}

// decodeError converts a non-2xx body to *Error, degrading gracefully
// when the body is not the expected envelope (a proxy error page, say).
func decodeError(status int, data []byte) error {
	var env struct {
		Error Error `json:"error"`
	}
	if err := json.Unmarshal(data, &env); err == nil && env.Error.Code != "" {
		e := env.Error
		e.StatusCode = status
		return &e
	}
	return &Error{StatusCode: status, Message: strings.TrimSpace(string(data))}
}

// Health returns the daemon's liveness document.
func (c *Client) Health(ctx context.Context) (map[string]any, error) {
	var out map[string]any
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Processes returns the registered process catalog with parameter
// schemas: the discovery half of the v1 contract.
func (c *Client) Processes(ctx context.Context) ([]process.Info, error) {
	var out struct {
		Processes []process.Info `json:"processes"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/processes", nil, &out); err != nil {
		return nil, err
	}
	return out.Processes, nil
}

// NodesView is the GET /v1/nodes discovery document: whether the
// daemon is clustered, its own identity and role, and the registered
// members with heartbeat-derived liveness.
type NodesView struct {
	// Cluster reports whether the daemon is a cluster member at all.
	Cluster bool `json:"cluster"`
	// Node is the serving daemon's own node ID (clustered daemons only).
	Node string `json:"node,omitempty"`
	// Role is the serving daemon's cluster role.
	Role cluster.Role `json:"role,omitempty"`
	// Nodes lists every registered member, sorted by ID.
	Nodes []cluster.NodeInfo `json:"nodes"`
}

// Nodes returns the daemon's cluster membership view. A single-node
// daemon answers with Cluster=false and an empty list.
func (c *Client) Nodes(ctx context.Context) (NodesView, error) {
	var out NodesView
	if err := c.do(ctx, http.MethodGet, "/v1/nodes", nil, &out); err != nil {
		return NodesView{}, err
	}
	return out, nil
}

// Journal returns the cluster's compute ledger: one entry per point a
// node computed while holding its lease, the record behind
// exactly-once accounting. A daemon that is not a cluster member
// answers 503 unavailable.
func (c *Client) Journal(ctx context.Context) ([]cluster.JournalEntry, error) {
	var out struct {
		Entries []cluster.JournalEntry `json:"entries"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/cluster/journal", nil, &out); err != nil {
		return nil, err
	}
	return out.Entries, nil
}

// Submit submits one job of the given kind ("process", "covertime",
// "cobra", "experiment", "sweep"). spec may be any JSON-marshalable
// value shaped like the corresponding engine spec — typically
// *engine.ProcessSpec. Higher priority runs first.
func (c *Client) Submit(ctx context.Context, kind string, spec any, priority int) (engine.Status, error) {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return engine.Status{}, fmt.Errorf("client: encode spec: %w", err)
	}
	req := map[string]any{"kind": kind, "spec": json.RawMessage(specJSON)}
	if priority != 0 {
		req["priority"] = priority
	}
	var out struct {
		Job engine.Status `json:"job"`
	}
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &out); err != nil {
		return engine.Status{}, err
	}
	return out.Job, nil
}

// SubmitProcess submits a generic process job.
func (c *Client) SubmitProcess(ctx context.Context, spec engine.ProcessSpec, priority int) (engine.Status, error) {
	return c.Submit(ctx, "process", spec, priority)
}

// SubmitSweep submits a server-side sweep, which fans out into child
// point jobs on the daemon's worker pool.
func (c *Client) SubmitSweep(ctx context.Context, spec engine.SweepSpec, priority int) (engine.Status, error) {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return engine.Status{}, fmt.Errorf("client: encode sweep spec: %w", err)
	}
	req := map[string]any{"spec": json.RawMessage(specJSON)}
	if priority != 0 {
		req["priority"] = priority
	}
	var out struct {
		Sweep engine.Status `json:"sweep"`
	}
	if err := c.do(ctx, http.MethodPost, "/v1/sweeps", req, &out); err != nil {
		return engine.Status{}, err
	}
	return out.Sweep, nil
}

// Job returns the current status of one job.
func (c *Client) Job(ctx context.Context, id string) (engine.Status, error) {
	var out struct {
		Job engine.Status `json:"job"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &out); err != nil {
		return engine.Status{}, err
	}
	return out.Job, nil
}

// Jobs lists jobs, most recent first. A non-empty status filters to
// that lifecycle state (queued, running, done, failed, canceled).
func (c *Client) Jobs(ctx context.Context, status string) ([]engine.Status, error) {
	path := "/v1/jobs"
	if status != "" {
		path += "?status=" + url.QueryEscape(status)
	}
	var out struct {
		Jobs []engine.Status `json:"jobs"`
	}
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// Sweep returns a sweep's status together with its child point
// statuses, in point order.
func (c *Client) Sweep(ctx context.Context, id string) (engine.Status, []engine.Status, error) {
	var out struct {
		Sweep    engine.Status   `json:"sweep"`
		Children []engine.Status `json:"children"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+url.PathEscape(id), nil, &out); err != nil {
		return engine.Status{}, nil, err
	}
	return out.Sweep, out.Children, nil
}

// Result returns the output of a finished job along with its terminal
// status. Requesting the result of an unfinished job returns *Error
// with code "not_finished".
func (c *Client) Result(ctx context.Context, id string) (*engine.Output, engine.Status, error) {
	var out struct {
		Job    engine.Status  `json:"job"`
		Result *engine.Output `json:"result"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/result", nil, &out); err != nil {
		return nil, engine.Status{}, err
	}
	return out.Result, out.Job, nil
}

// Cancel cancels a queued or running job, reporting whether the job
// existed and was not already terminal.
func (c *Client) Cancel(ctx context.Context, id string) (bool, error) {
	var out struct {
		Canceled bool `json:"canceled"`
	}
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &out); err != nil {
		return false, err
	}
	return out.Canceled, nil
}

// Wait polls the job until it reaches a terminal state or ctx is done,
// returning the terminal status. Prefer Follow when live progress
// matters; Wait is the fallback for environments that cannot hold a
// streaming response open.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (engine.Status, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return engine.Status{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ticker.C:
		case <-ctx.Done():
			return engine.Status{}, ctx.Err()
		}
	}
}

// Run is the synchronous convenience loop: submit the spec, follow its
// SSE status stream to the terminal state (calling onStatus, when
// non-nil, with each update), and fetch the result. It returns the
// output and the terminal status; a failed or canceled job returns the
// job error.
func (c *Client) Run(ctx context.Context, kind string, spec any, onStatus func(engine.Status)) (*engine.Output, engine.Status, error) {
	st, err := c.Submit(ctx, kind, spec, 0)
	if err != nil {
		return nil, engine.Status{}, err
	}
	return c.followResult(ctx, st, onStatus)
}

// RunSweep is Run for sweep specs submitted via /v1/sweeps.
func (c *Client) RunSweep(ctx context.Context, spec engine.SweepSpec, onStatus func(engine.Status)) (*engine.Output, engine.Status, error) {
	st, err := c.SubmitSweep(ctx, spec, 0)
	if err != nil {
		return nil, engine.Status{}, err
	}
	return c.followResult(ctx, st, onStatus)
}

// ExecuteSweep runs spec to completion either against a remote daemon
// (server non-empty: submit over HTTP and follow to the result) or on
// a throwaway in-process engine. The local engine uses one worker —
// each sweep point already fans its trials out across every core, so
// concurrent points would only oversubscribe the CPU — and a queue
// deep enough to hold the whole fan-out. This is the shared execution
// path of the batch CLIs (cmd/covertime, cmd/experiments), which must
// produce identical output either way.
func ExecuteSweep(ctx context.Context, server string, spec engine.SweepSpec, queueDepth int) (*engine.Output, error) {
	if server != "" {
		c, err := New(server)
		if err != nil {
			return nil, err
		}
		out, _, err := c.RunSweep(ctx, spec, nil)
		return out, err
	}
	eng := engine.New(engine.Options{Workers: 1, QueueDepth: queueDepth})
	defer eng.Shutdown(context.Background())
	return eng.RunSync(ctx, &spec)
}

func (c *Client) followResult(ctx context.Context, st engine.Status, onStatus func(engine.Status)) (*engine.Output, engine.Status, error) {
	final := st
	if !st.State.Terminal() {
		var err error
		final, err = c.Follow(ctx, st.ID, onStatus)
		if err != nil {
			return nil, engine.Status{}, err
		}
	} else if onStatus != nil {
		onStatus(st)
	}
	if final.State != engine.Done {
		return nil, final, fmt.Errorf("client: job %s %s: %s", final.ID, final.State, final.Error)
	}
	out, _, err := c.Result(ctx, final.ID)
	if err != nil {
		return nil, final, err
	}
	return out, final, nil
}
