package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/retry"
)

// SeriesView is the GET /v1/jobs/{id}/series document: the retained
// per-round observable frames of a job's traced trial.
type SeriesView struct {
	// Job is the job ID the series belongs to.
	Job string `json:"job"`
	// Frames are the retained frames in sequence order.
	Frames []obs.Frame `json:"frames"`
	// Next is the cursor to pass as since to read only newer frames.
	Next uint64 `json:"next"`
	// Capacity is the server-side ring capacity; older frames are gone.
	Capacity int `json:"capacity"`
}

// Series fetches the job's observable series. since resumes from a
// cursor returned in a previous view's Next (0 reads everything
// retained).
func (c *Client) Series(ctx context.Context, id string, since uint64) (SeriesView, error) {
	path := "/v1/jobs/" + url.PathEscape(id) + "/series"
	if since > 0 {
		path += "?since=" + strconv.FormatUint(since, 10)
	}
	var out SeriesView
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return SeriesView{}, err
	}
	return out, nil
}

// followLiveReconnects bounds how many times FollowLive reopens a
// dropped stream before giving up.
const followLiveReconnects = 5

// followLivePolicy is FollowLive's reconnect schedule, expressed on
// the same retryable-transport helper the cluster RPC client rides:
// bounded attempts, exponential backoff, context-aware sleeps. Jitter
// is zero so reconnect timing stays deterministic for tests.
func followLivePolicy() retry.Policy {
	return retry.Policy{
		MaxAttempts: followLiveReconnects + 1,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    2 * time.Second,
	}
}

// followLiveRetryable classifies one dropped stream: a typed API error
// (404, 400, ...) will not heal on retry; anything else — transport
// failures, 5xx, a stream that ended early — is worth reconnecting.
func followLiveRetryable(err error) bool {
	if apiErr, ok := err.(*Error); ok {
		return apiErr.IsRetryable()
	}
	return true
}

// FollowLive streams the job's multiplexed SSE feed — status updates
// plus per-round observable frame batches — until the job is terminal
// or ctx is done. Unlike Follow, a dropped stream is reopened (up to a
// bounded number of attempts) with the Last-Event-ID cursor of the
// last frames event seen, so a reconnect resumes the frame sequence
// without replaying delivered frames. onStatus and onFrames may each
// be nil. The terminal status is returned.
func (c *Client) FollowLive(ctx context.Context, id string, onStatus func(engine.Status), onFrames func([]obs.Frame)) (engine.Status, error) {
	var cursor string
	var final engine.Status
	err := followLivePolicy().Do(ctx, followLiveRetryable, func() error {
		st, terminal, err := c.followLiveOnce(ctx, id, &cursor, onStatus, onFrames)
		if terminal {
			final = st
			return nil
		}
		if err == nil {
			err = fmt.Errorf("client: events stream %s ended before a terminal status", id)
		}
		return err
	})
	if err == nil {
		return final, nil
	}
	if ctx.Err() != nil {
		return engine.Status{}, ctx.Err()
	}
	if apiErr, ok := err.(*Error); ok && !apiErr.IsRetryable() {
		return engine.Status{}, apiErr
	}
	return engine.Status{}, fmt.Errorf("client: follow %s: gave up after %d reconnects: %w", id, followLiveReconnects, err)
}

// followLiveOnce holds one SSE connection open, dispatching events and
// advancing *cursor as frames arrive. It reports the last status seen
// and whether it was terminal.
func (c *Client) followLiveOnce(ctx context.Context, id string, cursor *string, onStatus func(engine.Status), onFrames func([]obs.Frame)) (engine.Status, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return engine.Status{}, false, fmt.Errorf("client: build events request: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if *cursor != "" {
		req.Header.Set("Last-Event-ID", *cursor)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return engine.Status{}, false, fmt.Errorf("client: events %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data := make([]byte, 4096)
		n, _ := resp.Body.Read(data)
		return engine.Status{}, false, decodeError(resp.StatusCode, data[:n])
	}

	var (
		last    engine.Status
		eventID string
		event   string
		dataBuf strings.Builder
	)
	dispatch := func() (terminal bool, err error) {
		defer func() { eventID, event = "", ""; dataBuf.Reset() }()
		if dataBuf.Len() == 0 {
			return false, nil
		}
		switch event {
		case "status":
			var st engine.Status
			if err := json.Unmarshal([]byte(dataBuf.String()), &st); err != nil {
				return false, fmt.Errorf("client: decode status event: %w", err)
			}
			last = st
			if onStatus != nil {
				onStatus(st)
			}
			return st.State.Terminal(), nil
		case "frames":
			var frames []obs.Frame
			if err := json.Unmarshal([]byte(dataBuf.String()), &frames); err != nil {
				return false, fmt.Errorf("client: decode frames event: %w", err)
			}
			if eventID != "" {
				*cursor = eventID
			}
			if onFrames != nil && len(frames) > 0 {
				onFrames(frames)
			}
		}
		return false, nil
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			terminal, err := dispatch()
			if err != nil {
				return engine.Status{}, false, err
			}
			if terminal {
				return last, true, nil
			}
		case strings.HasPrefix(line, ":"):
			// Comment keep-alive.
		case strings.HasPrefix(line, "id:"):
			eventID = strings.TrimSpace(strings.TrimPrefix(line, "id:"))
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			dataBuf.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		}
	}
	if err := sc.Err(); err != nil {
		return engine.Status{}, false, fmt.Errorf("client: events stream %s: %w", id, err)
	}
	terminal, err := dispatch()
	if err != nil {
		return engine.Status{}, false, err
	}
	return last, terminal, nil
}
