package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/engine"
)

// Follow streams the job's Server-Sent-Events status feed until the job
// reaches a terminal state, the stream ends, or ctx is done. Each
// decoded status — the feed coalesces to the latest, so slow consumers
// skip intermediate progress but never the terminal state — is passed
// to onStatus when non-nil. The terminal status is returned.
//
// The SSE wire format here is the minimal subset cobrad emits: "event:"
// and "data:" lines separated by blank lines, with ":" comment
// keep-alives while a job idles in queue.
func (c *Client) Follow(ctx context.Context, id string, onStatus func(engine.Status)) (engine.Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return engine.Status{}, fmt.Errorf("client: build events request: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return engine.Status{}, fmt.Errorf("client: events %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data := make([]byte, 4096)
		n, _ := resp.Body.Read(data)
		return engine.Status{}, decodeError(resp.StatusCode, data[:n])
	}

	var (
		last     engine.Status
		sawAny   bool
		event    string
		dataBuf  strings.Builder
		sc       = bufio.NewScanner(resp.Body)
		dispatch = func() error {
			defer func() { event = ""; dataBuf.Reset() }()
			if event != "status" || dataBuf.Len() == 0 {
				return nil
			}
			var st engine.Status
			if err := json.Unmarshal([]byte(dataBuf.String()), &st); err != nil {
				return fmt.Errorf("client: decode status event: %w", err)
			}
			last, sawAny = st, true
			if onStatus != nil {
				onStatus(st)
			}
			return nil
		}
	)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := dispatch(); err != nil {
				return engine.Status{}, err
			}
			if sawAny && last.State.Terminal() {
				return last, nil
			}
		case strings.HasPrefix(line, ":"):
			// Comment keep-alive.
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			dataBuf.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return engine.Status{}, ctx.Err()
		}
		return engine.Status{}, fmt.Errorf("client: events stream %s: %w", id, err)
	}
	// The stream ended cleanly. cobrad closes it only after the terminal
	// status event, so reaching EOF with a non-terminal (or no) status
	// means the daemon went away mid-job.
	if err := dispatch(); err != nil {
		return engine.Status{}, err
	}
	if sawAny && last.State.Terminal() {
		return last, nil
	}
	return engine.Status{}, fmt.Errorf("client: events stream %s ended before a terminal status", id)
}
