// Gridscaling: a self-contained reproduction of Theorem 3's headline —
// the 2-cobra walk covers [0,n]^d in O(n) rounds. For d = 1, 2, 3 it
// sweeps the side length, fits the scaling exponent by log-log least
// squares, and contrasts the d = 2 exponent with the simple random
// walk's quadratic scaling.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const trials = 20
	sweeps := map[int][]int{
		1: {64, 128, 256, 512},
		2: {8, 16, 32, 64},
		3: {4, 6, 8, 12},
	}
	for _, d := range []int{1, 2, 3} {
		var xs, ys []float64
		fmt.Printf("d=%d grid [0,side-1]^%d, 2-cobra walk from the origin\n", d, d)
		fmt.Printf("%8s %10s %14s %12s\n", "side", "vertices", "cover mean", "cover/side")
		for _, side := range sweeps[d] {
			dd := d
			g := repro.Grid(dd, side)
			sample, err := repro.RunTrials(trials, uint64(d*1000+side),
				func(trial int, src *repro.Rand) (float64, error) {
					w := repro.NewCobraWalk(g, repro.CobraConfig{K: 2}, src)
					w.Reset(0)
					steps, ok := w.RunUntilCovered()
					if !ok {
						return 0, fmt.Errorf("cover cap exceeded")
					}
					return float64(steps), nil
				})
			if err != nil {
				log.Fatal(err)
			}
			mean, _ := repro.MeanCI(sample)
			fmt.Printf("%8d %10d %14.1f %12.2f\n", side, g.N(), mean, mean/float64(side))
			xs = append(xs, float64(side))
			ys = append(ys, mean)
		}
		fit := repro.FitPowerLaw(xs, ys)
		fmt.Printf("  fit: cover ≈ %.2f · side^%.3f  (theorem: exponent 1; R²=%.4f)\n\n",
			fit.Constant, fit.Exponent, fit.R2)
	}

	// Contrast: simple random walk on 2-D grids scales ≈ quadratically.
	fmt.Println("baseline: simple random walk on d=2 grids")
	var xs, ys []float64
	for _, side := range []int{8, 16, 32} {
		g := repro.Grid(2, side)
		sample, err := repro.RunTrials(10, uint64(9000+side),
			func(trial int, src *repro.Rand) (float64, error) {
				s := repro.NewSimpleWalk(g, 0, src)
				steps, ok := s.CoverTime(1000 * g.N() * g.N())
				if !ok {
					return 0, fmt.Errorf("RW cover cap exceeded")
				}
				return float64(steps), nil
			})
		if err != nil {
			log.Fatal(err)
		}
		mean, _ := repro.MeanCI(sample)
		fmt.Printf("  side %3d: %10.1f steps\n", side, mean)
		xs = append(xs, float64(side))
		ys = append(ys, mean)
	}
	fit := repro.FitPowerLaw(xs, ys)
	fmt.Printf("  fit: cover ≈ side^%.3f — the cobra walk's linear scaling beats it\n", fit.Exponent)
}
