// Quickstart: build the paper's grid [0,32]², run a 2-cobra walk from
// the origin, and print the cover time — the headline quantity of
// Theorem 3 — together with a comparison against a simple random walk.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The paper's [0,n]^d grid with n = 32: Grid(2, 33) has 33 points per
	// dimension.
	g := repro.Grid(2, 33)
	fmt.Printf("graph: %s\n", g)

	// One 2-cobra walk, deterministic under the seed.
	steps, ok := repro.CoverTime(g, 2, 0, 42)
	if !ok {
		log.Fatal("cover walk exceeded its step cap")
	}
	fmt.Printf("single 2-cobra run covered all %d vertices in %d rounds\n", g.N(), steps)

	// Averaged over independent trials, with a 95% confidence interval.
	sample, err := repro.MeanCoverTime(g, 2, 0, 30, 7)
	if err != nil {
		log.Fatal(err)
	}
	mean, hw := repro.MeanCI(sample)
	fmt.Printf("2-cobra cover time over 30 trials: %.1f ± %.1f rounds\n", mean, hw)

	// Baseline: the simple random walk needs quadratically many steps in
	// the side length (up to logs); the cobra walk is linear (Theorem 3).
	rw := repro.NewSimpleWalk(g, 0, repro.NewRand(7))
	rwSteps, ok := rw.CoverTime(100 * g.N() * g.N())
	if !ok {
		log.Fatal("random walk exceeded its step cap")
	}
	fmt.Printf("simple random walk covered the same grid in %d steps (%.0fx slower)\n",
		rwSteps, float64(rwSteps)/mean)
}
