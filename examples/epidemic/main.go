// Epidemic: the paper motivates cobra walks as an idealized SIS
// (susceptible-infected-susceptible) process — each round, every
// infected agent infects k random contacts and recovers. This example
// runs a 2-cobra walk on a power-law contact network (the standard model
// of human contact structure), prints the infection curve, and reports
// the time to full exposure ("everyone has been infected at least once")
// for several branching factors.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	// A 2000-person contact network with power-law degree distribution
	// (exponent 2.5, degrees 2..44) — heavy-tailed like real contact
	// graphs.
	const people = 2000
	g := repro.PowerLaw(people, 2.5, 2, 44, 11)
	fmt.Printf("contact network: %s\n\n", g)

	// Infection curve of one outbreak: active infections and cumulative
	// exposure per round.
	w := repro.NewCobraWalk(g, repro.CobraConfig{K: 2}, repro.NewRand(1))
	w.SetRecording(true)
	w.Reset(0)
	fmt.Println("round  active  exposed  curve")
	for round := 0; w.CoveredCount() < g.N(); round++ {
		bar := strings.Repeat("#", w.ActiveCount()*40/g.N()+1)
		if round%5 == 0 {
			fmt.Printf("%5d  %6d  %7d  %s\n", round, w.ActiveCount(), w.CoveredCount(), bar)
		}
		w.Step()
		if round > 100000 {
			log.Fatal("outbreak did not saturate")
		}
	}
	fmt.Printf("full exposure after %d rounds\n\n", w.Steps())

	// Time-to-full-exposure vs infectiousness (branching factor k),
	// averaged over outbreaks from random patient zero.
	fmt.Println("k (contacts infected per round)  mean rounds to full exposure")
	for _, k := range []int{1, 2, 3, 4} {
		kk := k
		sample, err := repro.RunTrials(20, uint64(100+k), func(trial int, src *repro.Rand) (float64, error) {
			w := repro.NewCobraWalk(g, repro.CobraConfig{K: kk}, src)
			w.Reset(int32(src.Intn(g.N())))
			steps, ok := w.RunUntilCovered()
			if !ok {
				return 0, fmt.Errorf("outbreak %d did not saturate", trial)
			}
			return float64(steps), nil
		})
		if err != nil {
			log.Fatal(err)
		}
		mean, hw := repro.MeanCI(sample)
		fmt.Printf("%31d  %.1f ± %.1f\n", k, mean, hw)
	}

	// The cobra walk is the β = 1 idealization of the SIS model. With
	// imperfect transmission the outbreak can die out: sweep β and watch
	// the survival probability cross the epidemic threshold.
	fmt.Println("\nSIS with imperfect transmission (K=2 contacts, full recovery):")
	fmt.Println("β (transmission prob)  P(outbreak survives to full exposure)")
	for _, beta := range []float64{0.2, 0.35, 0.5, 0.75, 1.0} {
		cfg := repro.SISConfig{K: 2, Beta: beta, Gamma: 1, MaxRounds: 200000}
		surv, err := repro.SISSurvivalProbability(g, 0, cfg, 40, uint64(1000+int(beta*100)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%21.2f  %.2f\n", beta, surv)
	}
}
