// Conductance: the Theorem 8 story in one program. For a portfolio of
// d-regular graphs spanning three orders of magnitude of conductance Φ,
// it estimates Φ spectrally (Cheeger brackets + sweep cuts), measures
// the 2-cobra cover time, and shows the measured time always sits below
// the O(Φ⁻² log² n) guarantee — with plenty of slack on low-conductance
// families, where the bound is loose.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	type entry struct {
		name string
		g    *repro.Graph
		phi  float64 // analytic conductance; 0 = estimate spectrally
	}
	rr, err := repro.RandomRegular(1024, 5, 1)
	if err != nil {
		log.Fatal(err)
	}
	entries := []entry{
		{"cycle n=512 (Φ≈2/n)", repro.Cycle(512), 2.0 / 512},
		{"torus 24×24 (Φ≈1/side)", repro.Torus(2, 24), 1.0 / 24},
		{"hypercube d=9 (Φ=1/9)", repro.Hypercube(9), 1.0 / 9},
		{"margulis m=32", repro.Margulis(32), 0},
		{"random 5-regular n=1024", rr, 0},
	}

	fmt.Printf("%-28s %6s %10s %12s %14s %12s\n",
		"graph", "n", "Φ", "cover mean", "Φ⁻²·log²n", "cover/bound")
	for i, e := range entries {
		phi := e.phi
		if phi == 0 {
			spec := repro.AnalyzeSpectrum(e.g)
			phi = spec.PhiHigh // a genuine cut: an upper bound on Φ
		}
		sample, err := repro.MeanCoverTime(e.g, 2, 0, 15, uint64(100+i))
		if err != nil {
			log.Fatal(err)
		}
		mean, _ := repro.MeanCI(sample)
		logn := math.Log(float64(e.g.N()))
		bound := logn * logn / (phi * phi)
		fmt.Printf("%-28s %6d %10.5f %12.1f %14.0f %12.5f\n",
			e.name, e.g.N(), phi, mean, bound, mean/bound)
	}
	fmt.Println("\nEvery ratio is ≤ 1: measured cover times respect the Theorem 8")
	fmt.Println("guarantee. Ratios shrink as Φ falls because the Φ⁻² dependence is")
	fmt.Println("loose for low-conductance graphs (a cycle covers in Θ(n) = Θ(Φ⁻¹)).")
}
