// Broadcast: the paper's second motivation is message dissemination —
// a vertex may forward k copies of a message per round. This example
// compares the 2-cobra walk against the related-work protocols on an
// expander (the topology of real peer-to-peer overlays): push gossip,
// push-pull gossip, a budget of 16 parallel random walks, and a single
// random walk. It prints a completion-time table and each protocol's
// per-round message budget, the trade-off the introduction discusses.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const n = 4096
	g, err := repro.RandomRegular(n, 5, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overlay: %s\n", g)
	spec := repro.AnalyzeSpectrum(g)
	fmt.Printf("spectral gap %.3f, conductance ∈ [%.3f, %.3f] — a genuine expander\n\n",
		spec.Gap, spec.PhiLow, spec.PhiHigh)

	const trials = 15
	type row struct {
		name   string
		budget string
		run    func(trial int, src *repro.Rand) (float64, error)
	}
	rows := []row{
		{"2-cobra walk", "2 msgs per active vertex", func(trial int, src *repro.Rand) (float64, error) {
			w := repro.NewCobraWalk(g, repro.CobraConfig{K: 2}, src)
			w.Reset(0)
			steps, ok := w.RunUntilCovered()
			return float64(steps), okErr(ok)
		}},
		{"push gossip", "1 msg per informed vertex", func(trial int, src *repro.Rand) (float64, error) {
			p := repro.NewGossip(g, repro.Push, 0, src)
			steps, ok := p.CompletionTime(1000 * n)
			return float64(steps), okErr(ok)
		}},
		{"push-pull gossip", "1 msg per vertex (all n)", func(trial int, src *repro.Rand) (float64, error) {
			p := repro.NewGossip(g, repro.PushPull, 0, src)
			steps, ok := p.CompletionTime(1000 * n)
			return float64(steps), okErr(ok)
		}},
		{"16 parallel walks", "16 msgs total", func(trial int, src *repro.Rand) (float64, error) {
			p := repro.NewParallelWalks(g, 16, 0, src)
			steps, ok := p.CoverTime(1000 * n * n)
			return float64(steps), okErr(ok)
		}},
		{"single random walk", "1 msg total", func(trial int, src *repro.Rand) (float64, error) {
			s := repro.NewSimpleWalk(g, 0, src)
			steps, ok := s.CoverTime(1000 * n * n)
			return float64(steps), okErr(ok)
		}},
	}

	fmt.Printf("%-20s %-28s %12s %10s\n", "protocol", "per-round budget", "mean rounds", "95% CI")
	for i, r := range rows {
		sample, err := repro.RunTrials(trials, uint64(10+i), r.run)
		if err != nil {
			log.Fatal(err)
		}
		mean, hw := repro.MeanCI(sample)
		fmt.Printf("%-20s %-28s %12.1f %10s\n", r.name, r.budget, mean, fmt.Sprintf("±%.1f", hw))
	}
	fmt.Println("\nThe cobra walk needs no vertex state (unlike gossip, which must")
	fmt.Println("remember being informed) yet covers the expander in polylog rounds.")
}

func okErr(ok bool) error {
	if !ok {
		return fmt.Errorf("step cap exceeded")
	}
	return nil
}
